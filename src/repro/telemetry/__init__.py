"""Telemetry subsystem: metrics registry, event bus, spans, exporters.

The observability layer of the reproduction (see DESIGN.md,
"Observability").  Three collection surfaces behind one global
``enabled`` flag:

* :class:`MetricsRegistry` — hierarchical counters/gauges/histograms
  with labels (``ocu.extent_cleared{space=heap}``);
* :class:`FlightRecorder` — ring-buffered structured
  :class:`TelemetryEvent` stream (alloc/free, OCU decisions, EC
  faults, oracle mismatches, cache and warp-scheduler activity);
* :class:`Tracer` — span timeline of launches/experiments.

Exporters produce a Perfetto-loadable Chrome trace and a combined
Prometheus-text + JSON metrics document.

On top of the post-hoc stack sits the **live plane** (DESIGN.md,
"Observability" → "Live plane"): :class:`ProgressBoard` tracks
in-flight jobs (queued → running → done/failed, EWMA ETA, per-phase
wall-time attribution) and :class:`ObservabilityServer` exposes
``/metrics``, ``/healthz`` and ``/progress`` (+ SSE) over it —
opt-in via ``--serve`` / ``REPRO_METRICS_PORT``, read-only over
telemetry state so exports stay byte-identical.
"""

from .events import IMPORTANT_KINDS, EventKind, FlightRecorder, TelemetryEvent
from .export import (
    METRICS_SCHEMA,
    TRACE_SCHEMA,
    chrome_trace,
    dumps,
    metrics_json,
    write_chrome_trace,
    write_json,
    write_metrics,
)
from .registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .runtime import (
    TELEMETRY,
    Telemetry,
    capture,
    configure,
    emit_event,
    get_telemetry,
    telemetry_enabled,
)
from .ledger import LEDGER_SCHEMA, RunLedger, git_sha, make_record
from .progress import PROGRESS, PROGRESS_SCHEMA, ProgressBoard, get_progress
from .registry import lint_prometheus
from .report import (
    build_html,
    build_summary,
    check_regressions,
    gateable_series,
    write_report,
    write_summary,
)
from .log import LOG, LOG_SCHEMA, StructuredLog
from .server import SERVE_ENV, ObservabilityServer, port_from_env, start_server
from .spans import Instant, LogicalClock, Span, Tracer, WallClock
from .tracectx import (
    TRACES,
    TraceStore,
    bind_trace,
    current_trace_id,
    new_trace_id,
    record_job_trace,
    reset_trace_ids,
)

__all__ = [
    "EventKind",
    "TelemetryEvent",
    "FlightRecorder",
    "IMPORTANT_KINDS",
    "METRICS_SCHEMA",
    "TRACE_SCHEMA",
    "chrome_trace",
    "metrics_json",
    "dumps",
    "write_json",
    "write_metrics",
    "write_chrome_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "Telemetry",
    "TELEMETRY",
    "capture",
    "configure",
    "emit_event",
    "get_telemetry",
    "telemetry_enabled",
    "Instant",
    "LogicalClock",
    "Span",
    "Tracer",
    "WallClock",
    "LEDGER_SCHEMA",
    "RunLedger",
    "git_sha",
    "make_record",
    "build_html",
    "build_summary",
    "check_regressions",
    "gateable_series",
    "write_report",
    "write_summary",
    "lint_prometheus",
    "PROGRESS",
    "PROGRESS_SCHEMA",
    "ProgressBoard",
    "get_progress",
    "SERVE_ENV",
    "ObservabilityServer",
    "port_from_env",
    "start_server",
    "LOG",
    "LOG_SCHEMA",
    "StructuredLog",
    "TRACES",
    "TraceStore",
    "bind_trace",
    "current_trace_id",
    "new_trace_id",
    "record_job_trace",
    "reset_trace_ids",
]
