"""Structured event bus / flight recorder.

The executor, hardware units and simulator publish
:class:`TelemetryEvent` records — per-access verdicts, OCU clears, EC
faults, oracle mismatches, warp scheduler activity — into a bounded
ring buffer (:class:`FlightRecorder`).  The recorder is the "black
box" of a run: it keeps the most recent *capacity* events so a fault
can always be explained from the stream that led up to it, while the
registry keeps the aggregate counts.

Hot-path discipline
-------------------
* When the recorder is disabled, :meth:`FlightRecorder.emit` returns
  after a single attribute test — no event object, no payload dict is
  retained.  Call sites in per-instruction loops additionally guard
  with ``if telemetry.enabled:`` so not even the ``**payload`` dict is
  built.
* ``sample_every=N`` keeps every Nth routine event; *important* kinds
  (faults, detections, oracle mismatches) bypass sampling so the
  signal is never thinned away.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, FrozenSet, List, Mapping, Optional


class EventKind(enum.Enum):
    """Vocabulary of the structured event bus."""

    ALLOC = "alloc"
    FREE = "free"
    SCOPE_EXIT = "scope_exit"
    POINTER_TAG = "pointer_tag"
    PTR_ARITH = "ptr_arith"
    OCU_CLEAR = "ocu_clear"
    OCU_PROPAGATE = "ocu_propagate"
    EC_FAULT = "ec_fault"
    ACCESS_CHECK = "access_check"
    DETECTION = "detection"
    ORACLE_VIOLATION = "oracle_violation"
    ORACLE_MISMATCH = "oracle_mismatch"
    CACHE_HIT = "cache_hit"
    CACHE_MISS = "cache_miss"
    WARP_ISSUE = "warp_issue"
    WARP_STALL = "warp_stall"
    KERNEL_BEGIN = "kernel_begin"
    KERNEL_END = "kernel_end"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Kinds that must never be lost to sampling (they are rare and are
#: exactly what post-mortem debugging needs).
IMPORTANT_KINDS: FrozenSet[EventKind] = frozenset(
    {
        EventKind.EC_FAULT,
        EventKind.DETECTION,
        EventKind.ORACLE_VIOLATION,
        EventKind.ORACLE_MISMATCH,
        EventKind.OCU_CLEAR,
        EventKind.KERNEL_BEGIN,
        EventKind.KERNEL_END,
    }
)


@dataclass(frozen=True)
class TelemetryEvent:
    """One structured record on the event bus."""

    #: Monotonic sequence number (1-based, counts every accepted emit).
    seq: int
    #: Logical (deterministic) or wall-clock microsecond timestamp.
    ts: int
    kind: EventKind
    payload: Mapping[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly rendering (enums stringified)."""
        return {
            "seq": self.seq,
            "ts": self.ts,
            "kind": self.kind.value,
            **{k: _jsonable(v) for k, v in sorted(self.payload.items())},
        }


def _jsonable(value: object) -> object:
    if isinstance(value, enum.Enum):
        return str(value)
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(value)


class FlightRecorder:
    """Ring-buffered event sink with sampling controls."""

    __slots__ = (
        "enabled",
        "capacity",
        "sample_every",
        "_ring",
        "_attempts",
        "emitted",
        "dropped",
        "sampled_out",
    )

    def __init__(
        self,
        capacity: int = 8192,
        *,
        sample_every: int = 1,
        enabled: bool = True,
    ) -> None:
        if capacity <= 0:
            raise ValueError("ring capacity must be positive")
        if sample_every <= 0:
            raise ValueError("sample_every must be positive")
        self.enabled = enabled
        self.capacity = capacity
        self.sample_every = sample_every
        self._ring: Deque[TelemetryEvent] = deque(maxlen=capacity)
        #: Emission attempts while enabled (sampling denominator).
        self._attempts = 0
        #: Events accepted into the ring (including later overwritten).
        self.emitted = 0
        #: Events overwritten by ring overflow.
        self.dropped = 0
        #: Events thinned away by sampling.
        self.sampled_out = 0

    # ------------------------------------------------------------------

    def emit(
        self, kind: EventKind, ts: int = 0, /, **payload: object
    ) -> Optional[TelemetryEvent]:
        """Publish one event; returns it, or None when suppressed."""
        if not self.enabled:
            return None
        self._attempts += 1
        if (
            self.sample_every > 1
            and kind not in IMPORTANT_KINDS
            and self._attempts % self.sample_every
        ):
            self.sampled_out += 1
            return None
        if len(self._ring) == self.capacity:
            self.dropped += 1
        event = TelemetryEvent(
            seq=self._attempts, ts=ts, kind=kind, payload=payload
        )
        self._ring.append(event)
        self.emitted += 1
        return event

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ring)

    def events(self, kind: Optional[EventKind] = None) -> List[TelemetryEvent]:
        """Chronological view of the buffered events."""
        if kind is None:
            return list(self._ring)
        return [event for event in self._ring if event.kind is kind]

    def drain(self) -> List[TelemetryEvent]:
        """Return and clear the buffered events (counters survive)."""
        events = list(self._ring)
        self._ring.clear()
        return events

    def clear(self) -> None:
        """Drop buffered events and zero all counters."""
        self._ring.clear()
        self._attempts = 0
        self.emitted = 0
        self.dropped = 0
        self.sampled_out = 0

    def counts_by_kind(self) -> Dict[str, int]:
        """Histogram of currently-buffered events by kind."""
        out: Dict[str, int] = {}
        for event in self._ring:
            out[event.kind.value] = out.get(event.kind.value, 0) + 1
        return dict(sorted(out.items()))


__all__ = [
    "EventKind",
    "TelemetryEvent",
    "FlightRecorder",
    "IMPORTANT_KINDS",
]
