"""Exporters: Chrome-trace/Perfetto JSON and Prometheus/JSON metrics.

Two artifact families:

* :func:`chrome_trace` — a ``traceEvents`` document loadable in
  ``chrome://tracing`` and https://ui.perfetto.dev.  Spans become "X"
  (complete) events, tracer instants and flight-recorder events become
  "i" (instant) events; warp/SM identifiers map onto Chrome's ``tid``
  so the warp-scheduler timeline renders as parallel tracks.
* :func:`metrics_json` — a JSON document embedding both the registry
  snapshot and the equivalent Prometheus text exposition, so one
  ``--metrics`` file serves dashboards and scripts alike.

All output is deterministic: keys sorted, no wall-clock metadata
unless the caller opts in via ``meta``.
"""

from __future__ import annotations

import enum
import json
import os
from typing import Dict, List, Optional

from .events import FlightRecorder
from .registry import MetricsRegistry
from .spans import Tracer

#: Schema tags stamped into every artifact.
METRICS_SCHEMA = "repro.telemetry.metrics/v1"
TRACE_SCHEMA = "repro.telemetry.trace/v1"


def _jsonable(value: object) -> object:
    if isinstance(value, enum.Enum):
        return str(value)
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in sorted(value.items())}
    return str(value)


def _arg_dict(args) -> Dict[str, object]:
    return {key: _jsonable(args[key]) for key in sorted(args)}


# ----------------------------------------------------------------------
# Chrome trace / Perfetto


def chrome_trace(
    tracer: Optional[Tracer] = None,
    recorder: Optional[FlightRecorder] = None,
    *,
    process_name: str = "repro",
    pid: int = 1,
) -> Dict[str, object]:
    """Build a Chrome-trace (Perfetto-loadable) document."""
    events: List[Dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    if tracer is not None:
        for span in tracer.spans:
            events.append(
                {
                    "name": span.name,
                    "cat": span.category or "span",
                    "ph": "X",
                    "ts": span.start,
                    "dur": max(0, span.duration),
                    "pid": pid,
                    "tid": span.tid,
                    "args": _arg_dict(span.args),
                }
            )
        for instant in tracer.instants:
            events.append(
                {
                    "name": instant.name,
                    "cat": instant.category or "instant",
                    "ph": "i",
                    "s": "t",
                    "ts": instant.ts,
                    "pid": pid,
                    "tid": instant.tid,
                    "args": _arg_dict(instant.args),
                }
            )
    if recorder is not None:
        for event in recorder.events():
            payload = event.payload
            tid = payload.get("warp", payload.get("thread", 0))
            if not isinstance(tid, int):
                tid = 0
            events.append(
                {
                    "name": event.kind.value,
                    "cat": "event",
                    "ph": "i",
                    "s": "t",
                    "ts": event.ts,
                    "pid": pid,
                    "tid": tid,
                    "args": _arg_dict(payload),
                }
            )
    events.sort(key=lambda e: (e.get("ts", -1), e["name"]))
    return {
        "schema": TRACE_SCHEMA,
        "displayTimeUnit": "ms",
        "traceEvents": events,
    }


# ----------------------------------------------------------------------
# Metrics


def metrics_json(
    registry: MetricsRegistry,
    *,
    meta: Optional[Dict[str, object]] = None,
    recorder: Optional[FlightRecorder] = None,
) -> Dict[str, object]:
    """Combined JSON + embedded-Prometheus metrics document."""
    doc: Dict[str, object] = {
        "schema": METRICS_SCHEMA,
        "meta": {k: _jsonable(v) for k, v in sorted((meta or {}).items())},
        "metrics": registry.snapshot(),
        "prometheus": registry.to_prometheus(),
    }
    if recorder is not None:
        doc["events"] = {
            "buffered": len(recorder),
            "emitted": recorder.emitted,
            "dropped": recorder.dropped,
            "sampled_out": recorder.sampled_out,
            "by_kind": recorder.counts_by_kind(),
        }
    return doc


# ----------------------------------------------------------------------
# Serialization helpers


def dumps(document: Dict[str, object]) -> str:
    """Deterministic JSON rendering (sorted keys, stable floats)."""
    return json.dumps(document, sort_keys=True, indent=2) + "\n"


def write_text_atomic(path: str, text: str) -> str:
    """Write *text* to *path* atomically, creating parent directories.

    Matches the trace cache's on-disk discipline: the payload lands in
    a same-directory temp file first and is published with
    ``os.replace``, so a crashed run never leaves a truncated artifact
    and a missing ``--trace``/``--metrics`` output directory no longer
    raises *after* the simulation already paid its cycles.
    """
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):  # pragma: no cover - error cleanup
            try:
                os.remove(tmp)
            except OSError:
                pass
    return path


def write_json(path: str, document: Dict[str, object]) -> str:
    """Write *document* to *path* deterministically; returns the path.

    Parent directories are created and the write is atomic (temp file
    + ``os.replace``); see :func:`write_text_atomic`.
    """
    return write_text_atomic(path, dumps(document))


def write_metrics(
    path: str,
    registry: MetricsRegistry,
    *,
    meta: Optional[Dict[str, object]] = None,
    recorder: Optional[FlightRecorder] = None,
) -> str:
    """Write the metrics document (JSON with embedded Prometheus)."""
    return write_json(
        path, metrics_json(registry, meta=meta, recorder=recorder)
    )


def write_chrome_trace(
    path: str,
    tracer: Optional[Tracer] = None,
    recorder: Optional[FlightRecorder] = None,
    *,
    process_name: str = "repro",
) -> str:
    """Write the Perfetto-loadable trace document."""
    return write_json(
        path, chrome_trace(tracer, recorder, process_name=process_name)
    )


__all__ = [
    "METRICS_SCHEMA",
    "TRACE_SCHEMA",
    "chrome_trace",
    "metrics_json",
    "dumps",
    "write_text_atomic",
    "write_json",
    "write_metrics",
    "write_chrome_trace",
]
