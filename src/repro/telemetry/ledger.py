"""Persistent run ledger: one JSONL record per experiment/benchmark run.

The telemetry subsystem observes a *single* run; the ledger gives the
repository a *trajectory*.  Every experiment or benchmark invocation
can append one structured record — git SHA, engine/mechanism
configuration, :class:`~repro.sim.core.SimStats`-style counter totals,
throughput and wall time — to a versioned, append-only JSONL file.
The ``repro report`` CLI (:mod:`repro.telemetry.report`) then renders
the accumulated history as perf-trajectory sparklines and runs the
``--check`` regression gate against the ledger median, so a slowdown
is noticed when it lands rather than when a 3× floor assert finally
trips.

Format
------
One JSON object per line.  Every record carries:

``schema``
    :data:`LEDGER_SCHEMA` (``repro.telemetry.ledger/v1``).  Unknown
    schemas are skipped on read, so the format can evolve.
``kind``
    Record family — ``"experiment"`` or ``"benchmark"``.
``name``
    Stable series key (e.g. ``"fig12"``, ``"sim_throughput"``).
``git_sha``
    Short commit SHA of the working tree (``"unknown"`` outside git).
``created_at``
    UTC ISO-8601 timestamp (wall clock; the only non-deterministic
    field, and the reason the ledger itself is never compared
    byte-for-byte).

plus caller-provided ``config``, ``counters``, ``metrics`` (numeric
series the regression check consumes, e.g. ``throughput``) and
``wall_seconds``.

Appends are atomic at line granularity: the record is rendered to one
``\\n``-terminated line and written with a single ``O_APPEND`` write,
so concurrent benchmark processes interleave whole records, never
partial ones.

Growth cap
----------
The ledger is append-only but not unbounded: when an append pushes the
file past ``REPRO_LEDGER_MAX_MB`` (default 64, 0 disables) it is
compacted in place to the **newest** records fitting half the cap —
written to a same-directory temp file and published with
``os.replace``, so readers racing a compaction see either the old or
the new file, never a torn one.  Compacting to half the cap keeps the
amortized cost O(1) per append instead of recompacting on every write
at the boundary.
"""

from __future__ import annotations

import json
import os
import subprocess
from datetime import datetime, timezone
from typing import Dict, List, Optional

#: Version tag stamped into (and required of) every ledger record.
LEDGER_SCHEMA = "repro.telemetry.ledger/v1"

#: Environment variable overriding the default ledger location.
LEDGER_ENV = "REPRO_LEDGER"

#: Environment variable bounding the ledger file size in MiB
#: (fractions allowed; ``0`` disables rotation).
LEDGER_MAX_MB_ENV = "REPRO_LEDGER_MAX_MB"

#: Default growth cap in MiB.
DEFAULT_LEDGER_MAX_MB = 64.0

#: Default on-disk location (shared with the benchmark artifacts).
DEFAULT_LEDGER_PATH = os.path.join("benchmarks", "out", "ledger.jsonl")


def default_ledger_path() -> str:
    """The ledger path: ``REPRO_LEDGER`` or the benchmarks/out default."""
    return os.environ.get(LEDGER_ENV) or DEFAULT_LEDGER_PATH


def ledger_max_bytes() -> int:
    """The rotation threshold in bytes (0 = rotation disabled).

    Reads ``REPRO_LEDGER_MAX_MB``; invalid values fall back to the
    default rather than silently disabling the cap.
    """
    raw = os.environ.get(LEDGER_MAX_MB_ENV, "").strip()
    if raw:
        try:
            megabytes = float(raw)
        except ValueError:
            megabytes = DEFAULT_LEDGER_MAX_MB
    else:
        megabytes = DEFAULT_LEDGER_MAX_MB
    if megabytes <= 0:
        return 0
    return int(megabytes * 1024 * 1024)


def git_sha(cwd: Optional[str] = None) -> str:
    """Short commit SHA of the working tree (``"unknown"`` outside git)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def make_record(
    kind: str,
    name: str,
    *,
    config: Optional[Dict[str, object]] = None,
    counters: Optional[Dict[str, object]] = None,
    metrics: Optional[Dict[str, float]] = None,
    wall_seconds: Optional[float] = None,
    phases: Optional[Dict[str, float]] = None,
    meta: Optional[Dict[str, object]] = None,
    sha: Optional[str] = None,
) -> Dict[str, object]:
    """Build one schema-stamped ledger record (not yet persisted).

    *metrics* is the numeric series dict the regression check reads
    (conventionally including ``throughput``); *counters* carries
    registry/SimStats totals; *config* the engine/mechanism settings
    that produced them.
    """
    record: Dict[str, object] = {
        "schema": LEDGER_SCHEMA,
        "kind": kind,
        "name": name,
        "git_sha": sha if sha is not None else git_sha(),
        "created_at": datetime.now(timezone.utc).strftime(
            "%Y-%m-%dT%H:%M:%SZ"
        ),
    }
    if config:
        record["config"] = config
    if counters:
        record["counters"] = counters
    if metrics:
        record["metrics"] = {k: float(v) for k, v in metrics.items()}
    if wall_seconds is not None:
        record["wall_seconds"] = round(float(wall_seconds), 6)
    if phases:
        record["phases"] = {
            k: round(float(v), 6) for k, v in phases.items()
        }
    if meta:
        record["meta"] = meta
    return record


class RunLedger:
    """Append-only JSONL ledger of experiment/benchmark runs."""

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path if path is not None else default_ledger_path()

    # ------------------------------------------------------------------
    # Writing

    def append(self, record: Dict[str, object]) -> Dict[str, object]:
        """Persist one record (schema-stamping it if needed).

        Parent directories are created; the line lands with a single
        ``O_APPEND`` write so concurrent writers interleave whole
        records.
        """
        if record.get("schema") != LEDGER_SCHEMA:
            record = dict(record)
            record["schema"] = LEDGER_SCHEMA
        line = json.dumps(record, sort_keys=True) + "\n"
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        fd = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)
        self._maybe_rotate()
        return record

    def _maybe_rotate(self) -> None:
        """Compact to the newest records when the size cap is hit.

        Keeps the newest valid lines whose total size fits half of
        ``REPRO_LEDGER_MAX_MB`` (so rotations amortize instead of
        firing on every append at the boundary) and publishes the
        compacted file atomically via ``os.replace``.  Malformed and
        foreign-schema lines are dropped during compaction — they
        carry no replayable history.
        """
        max_bytes = ledger_max_bytes()
        if max_bytes <= 0:
            return
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return
        if size <= max_bytes:
            return
        keep_budget = max_bytes // 2
        kept: List[bytes] = []
        kept_size = 0
        try:
            with open(self.path, "rb") as handle:
                lines = handle.readlines()
        except OSError:
            return
        for raw in reversed(lines):  # newest first
            text = raw.strip()
            if not text:
                continue
            try:
                record = json.loads(text)
            except ValueError:
                continue
            if (
                not isinstance(record, dict)
                or record.get("schema") != LEDGER_SCHEMA
            ):
                continue
            if kept and kept_size + len(raw) > keep_budget:
                break
            kept.append(text + b"\n")
            kept_size += len(raw)
        kept.reverse()
        tmp = f"{self.path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "wb") as handle:
                handle.writelines(kept)
            os.replace(tmp, self.path)
        finally:
            if os.path.exists(tmp):  # pragma: no cover - error cleanup
                try:
                    os.remove(tmp)
                except OSError:
                    pass

    def record(self, kind: str, name: str, **fields) -> Dict[str, object]:
        """:func:`make_record` + :meth:`append` in one call."""
        return self.append(make_record(kind, name, **fields))

    # ------------------------------------------------------------------
    # Reading

    def read(self) -> List[Dict[str, object]]:
        """All valid records, in append order.

        Malformed lines and unknown schemas are skipped (the ledger
        must survive version bumps and torn writes from killed runs).
        """
        if not os.path.exists(self.path):
            return []
        records: List[Dict[str, object]] = []
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if (
                    isinstance(record, dict)
                    and record.get("schema") == LEDGER_SCHEMA
                ):
                    records.append(record)
        return records

    def series(
        self, name: str, metric: str = "throughput"
    ) -> List[float]:
        """Chronological values of ``metrics[metric]`` for series *name*."""
        out: List[float] = []
        for record in self.read():
            if record.get("name") != name:
                continue
            metrics = record.get("metrics")
            if isinstance(metrics, dict) and metric in metrics:
                try:
                    out.append(float(metrics[metric]))
                except (TypeError, ValueError):
                    continue
        return out

    def names(self) -> List[str]:
        """Distinct series names, in first-seen order."""
        seen: List[str] = []
        for record in self.read():
            name = record.get("name")
            if isinstance(name, str) and name not in seen:
                seen.append(name)
        return seen


__all__ = [
    "LEDGER_SCHEMA",
    "LEDGER_ENV",
    "DEFAULT_LEDGER_PATH",
    "default_ledger_path",
    "git_sha",
    "make_record",
    "RunLedger",
]
