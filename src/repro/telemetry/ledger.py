"""Persistent run ledger: one JSONL record per experiment/benchmark run.

The telemetry subsystem observes a *single* run; the ledger gives the
repository a *trajectory*.  Every experiment or benchmark invocation
can append one structured record — git SHA, engine/mechanism
configuration, :class:`~repro.sim.core.SimStats`-style counter totals,
throughput and wall time — to a versioned, append-only JSONL file.
The ``repro report`` CLI (:mod:`repro.telemetry.report`) then renders
the accumulated history as perf-trajectory sparklines and runs the
``--check`` regression gate against the ledger median, so a slowdown
is noticed when it lands rather than when a 3× floor assert finally
trips.

Format
------
One JSON object per line.  Every record carries:

``schema``
    :data:`LEDGER_SCHEMA` (``repro.telemetry.ledger/v1``).  Unknown
    schemas are skipped on read, so the format can evolve.
``kind``
    Record family — ``"experiment"`` or ``"benchmark"``.
``name``
    Stable series key (e.g. ``"fig12"``, ``"sim_throughput"``).
``git_sha``
    Short commit SHA of the working tree (``"unknown"`` outside git).
``created_at``
    UTC ISO-8601 timestamp (wall clock; the only non-deterministic
    field, and the reason the ledger itself is never compared
    byte-for-byte).

plus caller-provided ``config``, ``counters``, ``metrics`` (numeric
series the regression check consumes, e.g. ``throughput``) and
``wall_seconds``.

Appends are atomic at line granularity: the record is rendered to one
``\\n``-terminated line and written with a single ``O_APPEND`` write,
so concurrent benchmark processes interleave whole records, never
partial ones.

Growth cap
----------
The ledger is append-only but not unbounded: when an append pushes the
file past ``REPRO_LEDGER_MAX_MB`` (default 64, 0 disables) it is
compacted in place to the **newest** records fitting half the cap —
written to a same-directory temp file and published with
``os.replace``, so readers racing a compaction see either the old or
the new file, never a torn one.  Compacting to half the cap keeps the
amortized cost O(1) per append instead of recompacting on every write
at the boundary.

Segmented (commit-anchored) mode
--------------------------------
Pointing a :class:`RunLedger` at a **directory** (an existing dir, or
any path spelled with a trailing separator) switches it to segment
mode: each writer process appends to its own
``seg-<gitsha>-<runid>.jsonl`` file inside the directory, named for
the commit that produced the records plus a per-process run id.  That
makes concurrent shards (or machines sharing a filesystem) natural
writers — no two processes ever touch the same file — and makes the
store *mergeable*: :func:`merge_ledgers` (CLI: ``repro ledger merge``)
folds any mix of segment directories and flat JSONL files into one
destination, deduplicating identical records and ordering by
``created_at``.  Reads present the union of all segments in the same
deterministic order, so ``repro report`` works unchanged on either
layout.  Rotation in segment mode drops the oldest whole segments
(never the one this process is writing) instead of rewriting files in
place, preserving the each-file-is-append-only property that makes
segments safe to rsync mid-run.
"""

from __future__ import annotations

import json
import os
import subprocess
import uuid
from datetime import datetime, timezone
from typing import Dict, Iterable, List, Optional, Tuple

#: Version tag stamped into (and required of) every ledger record.
LEDGER_SCHEMA = "repro.telemetry.ledger/v1"

#: Environment variable overriding the default ledger location.
LEDGER_ENV = "REPRO_LEDGER"

#: Environment variable bounding the ledger file size in MiB
#: (fractions allowed; ``0`` disables rotation).
LEDGER_MAX_MB_ENV = "REPRO_LEDGER_MAX_MB"

#: Default growth cap in MiB.
DEFAULT_LEDGER_MAX_MB = 64.0

#: Default on-disk location (shared with the benchmark artifacts).
DEFAULT_LEDGER_PATH = os.path.join("benchmarks", "out", "ledger.jsonl")


def default_ledger_path() -> str:
    """The ledger path: ``REPRO_LEDGER`` or the benchmarks/out default."""
    return os.environ.get(LEDGER_ENV) or DEFAULT_LEDGER_PATH


def ledger_max_bytes() -> int:
    """The rotation threshold in bytes (0 = rotation disabled).

    Reads ``REPRO_LEDGER_MAX_MB``; invalid values fall back to the
    default rather than silently disabling the cap.
    """
    raw = os.environ.get(LEDGER_MAX_MB_ENV, "").strip()
    if raw:
        try:
            megabytes = float(raw)
        except ValueError:
            megabytes = DEFAULT_LEDGER_MAX_MB
    else:
        megabytes = DEFAULT_LEDGER_MAX_MB
    if megabytes <= 0:
        return 0
    return int(megabytes * 1024 * 1024)


def git_sha(cwd: Optional[str] = None) -> str:
    """Short commit SHA of the working tree (``"unknown"`` outside git)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def make_record(
    kind: str,
    name: str,
    *,
    config: Optional[Dict[str, object]] = None,
    counters: Optional[Dict[str, object]] = None,
    metrics: Optional[Dict[str, float]] = None,
    wall_seconds: Optional[float] = None,
    phases: Optional[Dict[str, float]] = None,
    meta: Optional[Dict[str, object]] = None,
    sha: Optional[str] = None,
    fabric: Optional[Dict[str, object]] = None,
    serve: Optional[Dict[str, object]] = None,
    created_at: Optional[str] = None,
) -> Dict[str, object]:
    """Build one schema-stamped ledger record (not yet persisted).

    *metrics* is the numeric series dict the regression check reads
    (conventionally including ``throughput``); *counters* carries
    registry/SimStats totals; *config* the engine/mechanism settings
    that produced them; *fabric* the experiment-fabric operational
    counters (cells skipped/stolen/redispatched) for this run;
    *serve* the serving-plane summary (hit rate, latency percentiles,
    batch occupancy) of a ``repro.serve`` benchmark/smoke run — kept
    as-is because its values mix floats and counts.
    """
    record: Dict[str, object] = {
        "schema": LEDGER_SCHEMA,
        "kind": kind,
        "name": name,
        "git_sha": sha if sha is not None else git_sha(),
        "created_at": created_at
        if created_at is not None
        else datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
    }
    if config:
        record["config"] = config
    if counters:
        record["counters"] = counters
    if metrics:
        record["metrics"] = {k: float(v) for k, v in metrics.items()}
    if wall_seconds is not None:
        record["wall_seconds"] = round(float(wall_seconds), 6)
    if phases:
        record["phases"] = {
            k: round(float(v), 6) for k, v in phases.items()
        }
    if meta:
        record["meta"] = meta
    if fabric:
        record["fabric"] = {k: int(v) for k, v in fabric.items()}
    if serve:
        record["serve"] = dict(serve)
    return record


def _read_jsonl(path: str) -> List[Dict[str, object]]:
    """Valid ledger records of one JSONL file, in append order.

    Malformed lines and unknown schemas are skipped (the ledger must
    survive version bumps and torn writes from killed runs).
    """
    if not os.path.exists(path):
        return []
    records: List[Dict[str, object]] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if (
                    isinstance(record, dict)
                    and record.get("schema") == LEDGER_SCHEMA
                ):
                    records.append(record)
    except OSError:
        return []
    return records


class RunLedger:
    """Append-only JSONL ledger of experiment/benchmark runs.

    Flat mode (*path* names a ``.jsonl`` file) appends to that file.
    Segment mode (*path* names a directory — existing, or spelled with
    a trailing separator) appends to a per-process commit-anchored
    segment file inside it; see the module docstring.
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path if path is not None else default_ledger_path()
        self.segmented = self.path.endswith(os.sep) or os.path.isdir(
            self.path
        )
        #: Lazily-chosen per-process segment file (segment mode only);
        #: one RunLedger instance == one writer == one segment.
        self._segment: Optional[str] = None

    # ------------------------------------------------------------------
    # Writing

    def _write_path(self) -> str:
        """The file this instance appends to (lazy in segment mode)."""
        if not self.segmented:
            return self.path
        if self._segment is None:
            run_id = f"{os.getpid()}-{uuid.uuid4().hex[:8]}"
            self._segment = os.path.join(
                self.path, f"seg-{git_sha()}-{run_id}.jsonl"
            )
        return self._segment

    def append(self, record: Dict[str, object]) -> Dict[str, object]:
        """Persist one record (schema-stamping it if needed).

        Parent directories are created; the line lands with a single
        ``O_APPEND`` write so concurrent writers interleave whole
        records.
        """
        if record.get("schema") != LEDGER_SCHEMA:
            record = dict(record)
            record["schema"] = LEDGER_SCHEMA
        line = json.dumps(record, sort_keys=True) + "\n"
        path = self._write_path()
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)
        self._maybe_rotate()
        return record

    def _maybe_rotate(self) -> None:
        """Compact to the newest records when the size cap is hit.

        Keeps the newest valid lines whose total size fits half of
        ``REPRO_LEDGER_MAX_MB`` (so rotations amortize instead of
        firing on every append at the boundary) and publishes the
        compacted file atomically via ``os.replace``.  Malformed and
        foreign-schema lines are dropped during compaction — they
        carry no replayable history.
        """
        max_bytes = ledger_max_bytes()
        if max_bytes <= 0:
            return
        if self.segmented:
            self._rotate_segments(max_bytes)
            return
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return
        if size <= max_bytes:
            return
        keep_budget = max_bytes // 2
        kept: List[bytes] = []
        kept_size = 0
        try:
            with open(self.path, "rb") as handle:
                lines = handle.readlines()
        except OSError:
            return
        for raw in reversed(lines):  # newest first
            text = raw.strip()
            if not text:
                continue
            try:
                record = json.loads(text)
            except ValueError:
                continue
            if (
                not isinstance(record, dict)
                or record.get("schema") != LEDGER_SCHEMA
            ):
                continue
            if kept and kept_size + len(raw) > keep_budget:
                break
            kept.append(text + b"\n")
            kept_size += len(raw)
        kept.reverse()
        tmp = f"{self.path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "wb") as handle:
                handle.writelines(kept)
            os.replace(tmp, self.path)
        finally:
            if os.path.exists(tmp):  # pragma: no cover - error cleanup
                try:
                    os.remove(tmp)
                except OSError:
                    pass

    def _rotate_segments(self, max_bytes: int) -> None:
        """Drop the oldest whole segments once the dir exceeds the cap.

        Each segment stays append-only (never rewritten in place); the
        segment this process is writing is always preserved.  Keeps
        deleting the oldest segment — by first-record ``created_at``,
        filename as the tiebreak — until the directory fits half the
        cap, mirroring the flat-mode amortization.
        """
        sized: List[Tuple[str, str, int]] = []  # (sort key, path, size)
        total = 0
        for path in self._segment_files():
            try:
                size = os.path.getsize(path)
            except OSError:
                continue
            records = _read_jsonl(path)
            first = (
                str(records[0].get("created_at", "")) if records else ""
            )
            sized.append((first, path, size))
            total += size
        if total <= max_bytes:
            return
        keep_budget = max_bytes // 2
        for _, path, size in sorted(
            sized, key=lambda item: (item[0], os.path.basename(item[1]))
        ):
            if total <= keep_budget:
                break
            if path == self._segment:
                continue
            try:
                os.remove(path)
            except OSError:
                continue
            total -= size

    def record(self, kind: str, name: str, **fields) -> Dict[str, object]:
        """:func:`make_record` + :meth:`append` in one call."""
        return self.append(make_record(kind, name, **fields))

    # ------------------------------------------------------------------
    # Reading

    def _segment_files(self) -> List[str]:
        """Segment paths in filename order (segment mode only)."""
        if not self.segmented or not os.path.isdir(self.path):
            return []
        return [
            os.path.join(self.path, entry)
            for entry in sorted(os.listdir(self.path))
            if entry.startswith("seg-") and entry.endswith(".jsonl")
        ]

    def read(self) -> List[Dict[str, object]]:
        """All valid records, in deterministic chronological order.

        Flat mode returns append order.  Segment mode returns the
        union of every segment, stably sorted by ``created_at``
        (segments visited in filename order supply the tiebreak) — so
        two shards that wrote interleaved records read back in the
        same order on every machine that holds the same segments.

        Malformed lines and unknown schemas are skipped (the ledger
        must survive version bumps and torn writes from killed runs).
        """
        if not self.segmented:
            return _read_jsonl(self.path)
        records: List[Dict[str, object]] = []
        for path in self._segment_files():
            records.extend(_read_jsonl(path))
        records.sort(key=lambda rec: str(rec.get("created_at", "")))
        return records

    def series(
        self, name: str, metric: str = "throughput"
    ) -> List[float]:
        """Chronological values of ``metrics[metric]`` for series *name*."""
        out: List[float] = []
        for record in self.read():
            if record.get("name") != name:
                continue
            metrics = record.get("metrics")
            if isinstance(metrics, dict) and metric in metrics:
                try:
                    out.append(float(metrics[metric]))
                except (TypeError, ValueError):
                    continue
        return out

    def names(self) -> List[str]:
        """Distinct series names, in first-seen order."""
        seen: List[str] = []
        for record in self.read():
            name = record.get("name")
            if isinstance(name, str) and name not in seen:
                seen.append(name)
        return seen


def merge_ledgers(
    sources: Iterable[str], dest: str
) -> Tuple[int, int]:
    """Fold ledgers *sources* into *dest*; returns ``(added, total)``.

    Each source (and the destination) may be a flat JSONL file or a
    segment directory — :class:`RunLedger` reads either.  Records are
    deduplicated by their canonical JSON rendering (two shards that
    each recorded the same run contribute one copy), ordered stably by
    ``created_at``, and appended to *dest* preserving their original
    timestamps and git SHAs.  Idempotent: merging the same sources
    twice adds nothing the second time.
    """
    destination = RunLedger(dest)
    seen = {
        json.dumps(record, sort_keys=True)
        for record in destination.read()
    }
    fresh: List[Tuple[str, str, Dict[str, object]]] = []
    for source in sources:
        for record in RunLedger(source).read():
            key = json.dumps(record, sort_keys=True)
            if key in seen:
                continue
            seen.add(key)
            fresh.append(
                (str(record.get("created_at", "")), key, record)
            )
    fresh.sort(key=lambda item: item[0])
    for _, _, record in fresh:
        destination.append(record)
    return len(fresh), len(seen)


__all__ = [
    "LEDGER_SCHEMA",
    "LEDGER_ENV",
    "DEFAULT_LEDGER_PATH",
    "default_ledger_path",
    "git_sha",
    "make_record",
    "merge_ledgers",
    "RunLedger",
]
