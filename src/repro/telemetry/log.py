"""Structured, trace-correlated JSONL logging.

A bounded in-memory ring of schema-stamped records
(``repro.telemetry.log/v1``), each carrying a level, an event name,
free-form fields and — when one is bound or given — the originating
request's trace id, so a ``/logs?trace=rtx-…`` query reconstructs one
request's story across subsystems.

The ring is diagnostics-only, like :data:`~.tracectx.TRACES`: records
hold wall-clock timestamps and trace ids, neither of which may ever
reach the byte-identical ``--metrics``/``--trace`` exports (the leak
tests grep for the ``rtx-`` prefix).  Consumers are the serve
daemon's and observability server's ``/logs`` endpoints and the
slow-request forensics path, which dumps a full waterfall into the
log when a request breaches the latency threshold.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Dict, List, Optional

from .tracectx import current_trace_id

#: Schema tag stamped into every record (and the ``/logs`` body).
LOG_SCHEMA = "repro.telemetry.log/v1"

#: Records kept in the ring (oldest evicted first).
DEFAULT_LOG_CAPACITY = 2048

#: Recognised levels, in severity order.
LEVELS = ("debug", "info", "warning", "error")

_LEVEL_RANK = {name: rank for rank, name in enumerate(LEVELS)}


class StructuredLog:
    """Thread-safe bounded ring of structured log records."""

    def __init__(self, capacity: int = DEFAULT_LOG_CAPACITY) -> None:
        self.capacity = max(1, capacity)
        self._lock = threading.Lock()
        self._records: "deque[Dict[str, object]]" = deque(
            maxlen=self.capacity
        )
        self._seq = 0
        self._dropped = 0

    # ------------------------------------------------------------------

    def log(
        self,
        level: str,
        event: str,
        *,
        trace_id: Optional[str] = None,
        **fields: object,
    ) -> Dict[str, object]:
        """Append one record; returns it.

        *trace_id* defaults to the contextvar-bound id (None stays
        None).  Unknown levels are coerced to ``info`` rather than
        raised: a log call must never take down the caller.
        """
        if level not in _LEVEL_RANK:
            level = "info"
        if trace_id is None:
            trace_id = current_trace_id()
        record: Dict[str, object] = {
            "schema": LOG_SCHEMA,
            "ts_unix": round(time.time(), 3),
            "level": level,
            "event": event,
        }
        if trace_id is not None:
            record["trace_id"] = trace_id
        for key, value in fields.items():
            if value is not None:
                record[key] = value
        with self._lock:
            self._seq += 1
            record["seq"] = self._seq
            if len(self._records) == self.capacity:
                self._dropped += 1
            self._records.append(record)
        return record

    def debug(self, event: str, **fields: object) -> Dict[str, object]:
        return self.log("debug", event, **fields)

    def info(self, event: str, **fields: object) -> Dict[str, object]:
        return self.log("info", event, **fields)

    def warning(self, event: str, **fields: object) -> Dict[str, object]:
        return self.log("warning", event, **fields)

    def error(self, event: str, **fields: object) -> Dict[str, object]:
        return self.log("error", event, **fields)

    # ------------------------------------------------------------------

    def records(
        self,
        *,
        level: Optional[str] = None,
        trace_id: Optional[str] = None,
        event: Optional[str] = None,
        limit: int = 256,
    ) -> List[Dict[str, object]]:
        """Matching records, oldest first (bounded by *limit*, newest
        kept).  *level* is a minimum severity, not an exact match."""
        floor = _LEVEL_RANK.get(level, 0) if level else 0
        with self._lock:
            snapshot = list(self._records)
        out = [
            dict(record)
            for record in snapshot
            if _LEVEL_RANK.get(str(record.get("level")), 0) >= floor
            and (trace_id is None or record.get("trace_id") == trace_id)
            and (event is None or record.get("event") == event)
        ]
        if limit > 0:
            out = out[-limit:]
        return out

    def document(self, **query) -> Dict[str, object]:
        """The ``/logs`` response body."""
        records = self.records(**query)
        with self._lock:
            dropped = self._dropped
        return {
            "schema": LOG_SCHEMA,
            "count": len(records),
            "dropped": dropped,
            "records": records,
        }

    def dump_jsonl(self) -> str:
        """Every held record as JSONL (one sorted-key object/line)."""
        with self._lock:
            snapshot = list(self._records)
        return "".join(
            json.dumps(record, sort_keys=True, default=str) + "\n"
            for record in snapshot
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self._dropped = 0


#: Process-global structured log (diagnostics only; never exported).
LOG = StructuredLog()


__all__ = [
    "LOG_SCHEMA",
    "DEFAULT_LOG_CAPACITY",
    "LEVELS",
    "StructuredLog",
    "LOG",
]
