"""Live per-job run progress: the state machine behind ``/progress``.

The telemetry hub observes *what* a run computed; this module observes
*where the run is* while it computes.  A :class:`ProgressBoard` tracks
every experiment-engine job through the ``queued → running →
done/failed`` lifecycle, maintains an EWMA of completed-job wall time
(the ETA estimator), and aggregates per-phase wall-clock attribution
(``compile`` / ``trace_expand`` / ``sim`` / ``export``) that the run
ledger archives and ``repro report`` surfaces.

Design constraints, in order:

* **Zero interference with the determinism contracts.**  The board
  never emits telemetry events, never touches the metrics registry
  (except read-only in :meth:`ProgressBoard.snapshot`), and never
  feeds the exporters — so ``--metrics``/``--trace`` artifacts stay
  byte-identical whether or not anyone is watching (locked by
  ``tests/test_observability_server.py``).
* **Cheap when idle.**  Job-state updates are guarded by
  :attr:`ProgressBoard.active` (one attribute read when no run was
  begun); phase recording is a single locked dict update per *job*,
  not per instruction, so it is always on and feeds the ledger even
  without a server.
* **Thread-safe by construction.**  The experiment engine mutates the
  board from the main thread and pool callbacks while HTTP handler
  threads snapshot it and SSE streams block in
  :meth:`ProgressBoard.wait_for_change`; one condition variable
  covers all of it.

Wall times here are *real* seconds (``time.perf_counter``), unlike
the deterministic :class:`~repro.telemetry.spans.LogicalClock` spans —
an ETA derived from logical steps would be meaningless.
"""

from __future__ import annotations

import threading
import time
from datetime import datetime, timezone
from typing import Dict, List, Mapping, Optional, Tuple

#: Version tag stamped into every ``/progress`` snapshot.
PROGRESS_SCHEMA = "repro.telemetry.progress/v1"

#: Job lifecycle states (terminal: DONE, FAILED, SKIPPED).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
#: Terminal state of a cell served from the experiment fabric's
#: content-addressed cache — the work was *not* performed, so skipped
#: jobs never feed the EWMA/ETA estimators (a warm rerun's ETA must
#: describe the cells still being simulated, not the free ones).
SKIPPED = "skipped"

#: Counter families summed into the snapshot's ``violations`` block —
#: the live view of what the mechanisms are catching.
VIOLATION_COUNTERS = (
    "oracle.violations",
    "mechanism.detections",
    "ec.faults",
)

#: Smoothing factor for the completed-job wall-time EWMA.  0.25 keeps
#: roughly the last ~7 jobs' influence — responsive to a phase change
#: (e.g. the grid moving from cheap to expensive benchmarks) without
#: the ETA jittering on every cell.
EWMA_ALPHA = 0.25


class JobProgress:
    """One job's live lifecycle record."""

    __slots__ = (
        "job_id",
        "benchmark",
        "mechanism",
        "state",
        "phase",
        "retries",
        "index",
        "_queued_at",
        "_started_at",
        "wall_seconds",
    )

    def __init__(
        self, job_id: str, benchmark: str, mechanism: str, index: int
    ) -> None:
        self.job_id = job_id
        self.benchmark = benchmark
        self.mechanism = mechanism
        self.state = QUEUED
        self.phase = ""
        self.retries = 0
        self.index = index
        self._queued_at = time.perf_counter()
        self._started_at: Optional[float] = None
        self.wall_seconds: Optional[float] = None

    def live_wall_seconds(self) -> Optional[float]:
        """Wall time so far: final for terminal states, running for
        RUNNING, None while queued."""
        if self.wall_seconds is not None:
            return self.wall_seconds
        if self._started_at is not None:
            return time.perf_counter() - self._started_at
        return None

    def as_dict(self) -> Dict[str, object]:
        wall = self.live_wall_seconds()
        return {
            "id": self.job_id,
            "benchmark": self.benchmark,
            "mechanism": self.mechanism,
            "state": self.state,
            "phase": self.phase,
            "retries": self.retries,
            "wall_seconds": round(wall, 6) if wall is not None else None,
        }


class ProgressBoard:
    """Thread-safe queued → running → done/failed job tracker."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self.version = 0
        self.active = False
        self._reset_run_locked()
        #: phase name -> [total_seconds, count]; survives end_run so
        #: the CLI can delta it per experiment for the ledger.
        self._phases: Dict[str, List[float]] = {}

    # ------------------------------------------------------------------
    # Run lifecycle

    def _reset_run_locked(self) -> None:
        self.run_name = ""
        self.run_status = "idle"
        self.run_meta: Dict[str, object] = {}
        self._jobs: Dict[str, JobProgress] = {}
        self._counts = {
            QUEUED: 0, RUNNING: 0, DONE: 0, FAILED: 0, SKIPPED: 0,
        }
        self._retries = 0
        self._ewma_seconds: Optional[float] = None
        self._run_started: Optional[float] = None
        self._started_at_iso: Optional[str] = None
        self._next_index = 0
        self._total_registered = 0
        self._max_finished: Optional[int] = None
        self._terminal_order: List[str] = []

    def begin_run(
        self,
        name: str,
        meta: Optional[Mapping[str, object]] = None,
        *,
        max_finished: Optional[int] = None,
    ) -> None:
        """Start tracking a run; clears any previous run's jobs.

        *max_finished* bounds how many **terminal** (done/failed/
        skipped) job records are retained: once exceeded, the oldest
        terminal jobs are dropped from the per-job table.  The
        aggregate counts and the snapshot ``total`` keep describing
        every job ever registered — only the per-job detail rows are
        pruned.  A long-lived run (the ``repro.serve`` daemon tracks
        one batch per dispatch, indefinitely) sets this so the board
        cannot grow without bound; finite experiment grids leave it
        ``None`` and behave exactly as before.
        """
        with self._cond:
            self._reset_run_locked()
            self.run_name = name
            self.run_status = "running"
            self.run_meta = dict(meta or {})
            if max_finished is not None and max_finished < 0:
                raise ValueError("max_finished must be >= 0")
            self._max_finished = max_finished
            self._run_started = time.perf_counter()
            self._started_at_iso = datetime.now(timezone.utc).strftime(
                "%Y-%m-%dT%H:%M:%SZ"
            )
            self.active = True
            self._touch_locked()

    def end_run(self, status: str = "done") -> None:
        """Stop tracking; the final snapshot stays readable."""
        with self._cond:
            if not self.active:
                return
            self.run_status = status
            self.active = False
            self._touch_locked()

    # ------------------------------------------------------------------
    # Job transitions (no-ops unless a run is active)

    def job_queued(self, benchmark: str, mechanism: str) -> Optional[str]:
        """Register one job; returns its id (None while inactive)."""
        if not self.active:
            return None
        with self._cond:
            if not self.active:
                return None
            index = self._next_index
            self._next_index += 1
            job_id = f"{index}:{benchmark}:{mechanism}"
            self._jobs[job_id] = JobProgress(
                job_id, benchmark, mechanism, index
            )
            self._counts[QUEUED] += 1
            self._total_registered += 1
            self._touch_locked()
            return job_id

    def job_running(
        self, job_id: Optional[str], phase: str = "sim"
    ) -> None:
        """queued → running (idempotent; ignores unknown/None ids)."""
        if job_id is None:
            return
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None or job.state != QUEUED:
                return
            job.state = RUNNING
            job.phase = phase
            job._started_at = time.perf_counter()
            self._counts[QUEUED] -= 1
            self._counts[RUNNING] += 1
            self._touch_locked()

    def job_finished(self, job_id: Optional[str], *, ok: bool = True) -> None:
        """running (or queued) → done/failed; updates the ETA EWMA."""
        if job_id is None:
            return
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None or job.state in (DONE, FAILED, SKIPPED):
                return
            now = time.perf_counter()
            started = job._started_at
            if started is None:  # finished without an observed start
                started = job._queued_at
                self._counts[QUEUED] -= 1
            else:
                self._counts[RUNNING] -= 1
            job.wall_seconds = now - started
            job.phase = ""
            job.state = DONE if ok else FAILED
            self._counts[job.state] += 1
            if ok:
                if self._ewma_seconds is None:
                    self._ewma_seconds = job.wall_seconds
                else:
                    self._ewma_seconds += EWMA_ALPHA * (
                        job.wall_seconds - self._ewma_seconds
                    )
            self._job_terminal_locked(job_id)
            self._touch_locked()

    def job_skipped(self, job_id: Optional[str]) -> None:
        """queued → skipped: the cell was served from the result cache.

        Distinct from *done* so a warm rerun reads honestly on the
        board (and in ``repro top``): skipped cells performed no work,
        so they bypass the wall-time EWMA entirely — the ETA keeps
        describing only the cells actually being simulated.
        """
        if job_id is None:
            return
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None or job.state not in (QUEUED, RUNNING):
                return
            self._counts[job.state] -= 1
            job.state = SKIPPED
            job.phase = ""
            job.wall_seconds = 0.0
            self._counts[SKIPPED] += 1
            self._job_terminal_locked(job_id)
            self._touch_locked()

    def job_retry(self, job_id: Optional[str]) -> None:
        """Bump a job's retry count and park it back in the queue."""
        if job_id is None:
            return
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None or job.state in (DONE, FAILED, SKIPPED):
                return
            job.retries += 1
            self._retries += 1
            if job.state == RUNNING:
                self._counts[RUNNING] -= 1
                self._counts[QUEUED] += 1
                job.state = QUEUED
                job._started_at = None
            self._touch_locked()

    def _job_terminal_locked(self, job_id: str) -> None:
        """Track terminal order; prune the oldest past ``max_finished``."""
        if self._max_finished is None:
            return
        self._terminal_order.append(job_id)
        while len(self._terminal_order) > self._max_finished:
            oldest = self._terminal_order.pop(0)
            self._jobs.pop(oldest, None)

    # ------------------------------------------------------------------
    # Phase attribution (always on; job-granularity, so cheap)

    def record_phase(self, name: str, seconds: float) -> None:
        """Fold one phase interval into the per-phase aggregates."""
        with self._cond:
            bucket = self._phases.get(name)
            if bucket is None:
                self._phases[name] = [float(seconds), 1.0]
            else:
                bucket[0] += seconds
                bucket[1] += 1

    def record_phases(self, phases: Mapping[str, float]) -> None:
        """Fold a ``phase -> seconds`` mapping (one job's attribution)."""
        with self._cond:
            for name, seconds in phases.items():
                bucket = self._phases.get(name)
                if bucket is None:
                    self._phases[name] = [float(seconds), 1.0]
                else:
                    bucket[0] += seconds
                    bucket[1] += 1

    def phase_totals(self) -> Dict[str, float]:
        """``phase -> cumulative seconds`` (for ledger deltas)."""
        with self._lock:
            return {name: bucket[0] for name, bucket in self._phases.items()}

    # ------------------------------------------------------------------
    # Observation

    def _touch_locked(self) -> None:
        self.version += 1
        self._cond.notify_all()

    def wake(self) -> None:
        """Wake all :meth:`wait_for_change` waiters without a change
        (used by server shutdown so SSE loops notice promptly)."""
        with self._cond:
            self._cond.notify_all()

    def wait_for_change(
        self, last_version: int, timeout: float = 0.5
    ) -> Tuple[int, bool]:
        """Block until ``version != last_version`` or *timeout*.

        Returns ``(version, changed)``; SSE streams loop on this.
        """
        with self._cond:
            if self.version == last_version:
                self._cond.wait(timeout)
            version = self.version
            return version, version != last_version

    def _eta_seconds_locked(self) -> Optional[float]:
        if self._ewma_seconds is None:
            return None
        remaining = self._counts[QUEUED] + self._counts[RUNNING]
        if remaining == 0:
            return 0.0
        parallel = max(1, self._counts[RUNNING])
        return self._ewma_seconds * remaining / parallel

    def snapshot(self, max_jobs: int = 256) -> Dict[str, object]:
        """JSON-ready view of the whole board (the ``/progress`` body).

        *max_jobs* bounds the per-job list so a thousand-mutant
        campaign cannot balloon the payload; the aggregate counts
        always cover every job.  Jobs are ordered by interest —
        running first, then the queue in run order (next up first),
        then finished jobs newest-first — so a truncated list still
        shows what the run is doing *now*.
        """
        # Imported here, not at module top: runtime has no dependency
        # on progress, keeping the hub importable without this module.
        from .runtime import TELEMETRY

        with self._lock:
            uptime = (
                time.perf_counter() - self._run_started
                if self._run_started is not None
                else None
            )
            done = self._counts[DONE]
            rate = (
                done / uptime if uptime and uptime > 0 and done else None
            )
            eta = self._eta_seconds_locked()
            state_rank = {
                RUNNING: 0, QUEUED: 1, DONE: 2, FAILED: 2, SKIPPED: 2,
            }
            jobs = sorted(
                self._jobs.values(),
                key=lambda j: (
                    state_rank[j.state],
                    j.index if j.state in (RUNNING, QUEUED) else -j.index,
                ),
            )[:max_jobs]
            snap: Dict[str, object] = {
                "schema": PROGRESS_SCHEMA,
                "version": self.version,
                "active": self.active,
                "run": {
                    "name": self.run_name,
                    "status": self.run_status,
                    "meta": dict(self.run_meta),
                    "started_at": self._started_at_iso,
                    "uptime_seconds": (
                        round(uptime, 3) if uptime is not None else None
                    ),
                    "total": self._total_registered,
                    "queued": self._counts[QUEUED],
                    "running": self._counts[RUNNING],
                    "done": done,
                    "failed": self._counts[FAILED],
                    "skipped": self._counts[SKIPPED],
                    "retries": self._retries,
                    "ewma_job_seconds": (
                        round(self._ewma_seconds, 6)
                        if self._ewma_seconds is not None
                        else None
                    ),
                    "jobs_per_second": (
                        round(rate, 3) if rate is not None else None
                    ),
                    "eta_seconds": (
                        round(eta, 3) if eta is not None else None
                    ),
                },
                "phases": {
                    name: {
                        "seconds": round(bucket[0], 6),
                        "count": int(bucket[1]),
                    }
                    for name, bucket in sorted(self._phases.items())
                },
                "jobs": [job.as_dict() for job in jobs],
            }
        # Registry reads happen outside the board lock (different
        # subsystem, no ordering requirement).
        registry = TELEMETRY.registry
        snap["violations"] = {
            name: registry.total(name) for name in VIOLATION_COUNTERS
        }
        return snap


#: The process-global board the engine updates and the server reads.
PROGRESS = ProgressBoard()


def get_progress() -> ProgressBoard:
    """The process-global progress board."""
    return PROGRESS


__all__ = [
    "PROGRESS_SCHEMA",
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "SKIPPED",
    "VIOLATION_COUNTERS",
    "EWMA_ALPHA",
    "JobProgress",
    "ProgressBoard",
    "PROGRESS",
    "get_progress",
]
