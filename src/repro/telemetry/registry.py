"""Hierarchical metrics registry: counters, gauges, histograms.

Every number the reproduction produces — per-check OCU/EC verdicts,
mechanism counters, cycle-level simulator statistics — is registered
here under a dotted hierarchical name plus a set of labels, e.g.
``ocu.extent_cleared{space=heap}``.  The registry is deliberately
dependency-free and deterministic: snapshots and the Prometheus text
exposition sort every name and label, so the same run always exports
byte-identical artifacts.

Design notes
------------
* Instruments are plain attribute-bag objects (``__slots__``) with an
  ``inc``/``set``/``observe`` hot path of one attribute update — cheap
  enough to sit behind per-access counters in the functional executor.
* The timing simulator's innermost loop does *not* call into the
  registry; it accumulates plain ints (:class:`~repro.sim.core.SimStats`)
  and publishes the totals here at end of run, keeping the
  telemetry-disabled fast path allocation-free.
* :meth:`MetricsRegistry.merge` folds one registry into another
  (counters add, gauges take the other's latest value, histograms sum
  bucket-wise), which is how per-mechanism private registries roll up
  into the process-global one.
"""

from __future__ import annotations

import bisect
import re
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

Number = Union[int, float]
LabelKey = Tuple[Tuple[str, str], ...]

#: Default histogram bucket upper bounds (powers of two + overflow).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
    4096.0, 16384.0, 65536.0, float("inf"),
)

#: Bucket bounds for request-latency histograms, in seconds.  The
#: default buckets are integer-granular — useless below one second —
#: so latency-observing subsystems (the serve daemon's p50/p99) use
#: this 1ms..60s log-spaced ladder instead.
LATENCY_BUCKETS_SECONDS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, float("inf"),
)


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    """Canonical, hashable, sorted form of a label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _label_suffix(labels: LabelKey) -> str:
    """``{k=v,...}`` rendering used by snapshot keys ('' when empty)."""
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


class Counter:
    """Monotonic counter (the value is still settable so stats views
    can restore snapshots; exporters treat it as a counter)."""

    kind = "counter"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        """Add *amount* (default 1)."""
        self.value += amount

    def set(self, value: Number) -> None:
        """Overwrite the value (stats-view assignment path)."""
        self.value = value


class Gauge:
    """Point-in-time value."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: Number = 0

    def set(self, value: Number) -> None:
        """Record the latest observation."""
        self.value = value

    def inc(self, amount: Number = 1) -> None:
        """Adjust upward."""
        self.value += amount

    def dec(self, amount: Number = 1) -> None:
        """Adjust downward."""
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram (cumulative counts on export, like
    Prometheus ``le`` buckets)."""

    kind = "histogram"
    __slots__ = (
        "name", "labels", "buckets", "counts", "sum", "count", "exemplars",
    )

    def __init__(
        self,
        name: str,
        labels: LabelKey = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        bounds = sorted(float(b) for b in buckets)
        if not bounds or bounds[-1] != float("inf"):
            bounds.append(float("inf"))
        self.name = name
        self.labels = labels
        self.buckets: Tuple[float, ...] = tuple(bounds)
        self.counts: List[int] = [0] * len(bounds)
        self.sum: float = 0.0
        self.count: int = 0
        #: Last exemplar per bucket index: ``{index: (value, trace_id)}``.
        #: Rendered only by the OpenMetrics exposition — ``snapshot()``
        #: and ``to_prometheus()`` never read it, so the deterministic
        #: exports cannot carry trace ids.
        self.exemplars: Dict[int, Tuple[float, str]] = {}

    def observe(
        self, value: Number, trace_id: Optional[str] = None
    ) -> None:
        """Record one observation (optionally tagged with the trace id
        of the request that produced it — an OpenMetrics exemplar)."""
        index = bisect.bisect_left(self.buckets, value)
        self.counts[index] += 1
        self.sum += value
        self.count += 1
        if trace_id is not None:
            self.exemplars[index] = (float(value), trace_id)

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(le, cumulative_count)`` pairs, Prometheus style."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.buckets, self.counts):
            running += count
            out.append((bound, running))
        return out

    def quantile(self, q: float) -> Optional[float]:
        """Estimated *q*-quantile from the bucket counts.

        Standard Prometheus-style estimation: find the bucket holding
        the target rank and interpolate linearly inside it (from the
        previous bucket's upper bound).  Observations that landed in
        the overflow bucket report that bucket's lower bound — a floor,
        the honest answer a fixed-bucket histogram can give.  Returns
        ``None`` while empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        target = q * self.count
        running = 0
        lower = 0.0
        for bound, count in zip(self.buckets, self.counts):
            if count and running + count >= target:
                if bound == float("inf"):
                    return lower
                fraction = (target - running) / count
                fraction = min(1.0, max(0.0, fraction))
                return lower + (bound - lower) * fraction
            running += count
            if bound != float("inf"):
                lower = bound
        return lower


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Label-aware instrument store with deterministic export."""

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, LabelKey], Instrument] = {}

    # ------------------------------------------------------------------
    # Instrument accessors (get-or-create)

    def counter(self, name: str, **labels: object) -> Counter:
        """Get or create the counter ``name{labels}``."""
        return self._get(Counter, name, _label_key(labels))

    def gauge(self, name: str, **labels: object) -> Gauge:
        """Get or create the gauge ``name{labels}``."""
        return self._get(Gauge, name, _label_key(labels))

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        **labels: object,
    ) -> Histogram:
        """Get or create the histogram ``name{labels}``."""
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = Histogram(
                name, key[1], buckets if buckets is not None else DEFAULT_BUCKETS
            )
            self._instruments[key] = instrument
        elif not isinstance(instrument, Histogram):
            raise TypeError(
                f"metric {name!r} already registered as {instrument.kind}"
            )
        return instrument

    def _get(self, cls, name: str, labels: LabelKey):
        key = (name, labels)
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, labels)
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} already registered as {instrument.kind}"
            )
        return instrument

    # ------------------------------------------------------------------
    # Queries

    def __iter__(self) -> Iterator[Instrument]:
        for key in sorted(self._instruments):
            yield self._instruments[key]

    def __len__(self) -> int:
        return len(self._instruments)

    def value(self, name: str, **labels: object) -> Number:
        """Current value of a counter/gauge (0 when never touched)."""
        instrument = self._instruments.get((name, _label_key(labels)))
        if instrument is None:
            return 0
        if isinstance(instrument, Histogram):
            raise TypeError(f"{name!r} is a histogram; use .histogram()")
        return instrument.value

    def total(self, name: str) -> Number:
        """Sum of a counter over every label combination."""
        return sum(
            inst.value
            for (metric_name, _), inst in self._instruments.items()
            if metric_name == name and not isinstance(inst, Histogram)
        )

    # ------------------------------------------------------------------
    # Maintenance

    def reset(self) -> None:
        """Drop every instrument."""
        self._instruments.clear()

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold *other* into this registry.

        Counters and histogram buckets add; gauges take the other's
        value (latest wins).
        """
        for (name, labels), inst in other._instruments.items():
            if isinstance(inst, Counter):
                self._get(Counter, name, labels).inc(inst.value)
            elif isinstance(inst, Gauge):
                self._get(Gauge, name, labels).set(inst.value)
            else:
                mine = self._instruments.get((name, labels))
                if mine is None:
                    mine = Histogram(name, labels, inst.buckets)
                    self._instruments[(name, labels)] = mine
                if not isinstance(mine, Histogram):
                    raise TypeError(
                        f"metric {name!r} already registered as {mine.kind}"
                    )
                for index, count in enumerate(inst.counts):
                    mine.counts[index] += count
                mine.sum += inst.sum
                mine.count += inst.count

    # ------------------------------------------------------------------
    # Export

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Deterministic nested dict: kind -> ``name{labels}`` -> value."""
        out: Dict[str, Dict[str, object]] = {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        for inst in self:
            key = inst.name + _label_suffix(inst.labels)
            if isinstance(inst, Counter):
                out["counters"][key] = inst.value
            elif isinstance(inst, Gauge):
                out["gauges"][key] = inst.value
            else:
                out["histograms"][key] = {
                    "count": inst.count,
                    "sum": inst.sum,
                    "buckets": {
                        ("+Inf" if bound == float("inf") else _format_num(bound)):
                            cumulative
                        for bound, cumulative in inst.cumulative()
                    },
                }
        return out

    def to_prometheus(self, prefix: str = "repro") -> str:
        """Prometheus text exposition format (version 0.0.4).

        Emits exactly one ``# HELP``/``# TYPE`` pair per metric family
        (label variants of one metric share a family), escapes label
        values per the exposition spec (``\\`` → ``\\\\``, ``"`` →
        ``\\"``, newline → ``\\n``) and HELP text (``\\`` and newline),
        and always includes the cumulative ``+Inf`` histogram bucket.
        """
        lines: List[str] = []
        seen_types: Dict[str, str] = {}
        for inst in self:
            metric = _prom_name(prefix, inst.name)
            if metric not in seen_types:
                seen_types[metric] = inst.kind
                lines.append(f"# HELP {metric} {_prom_help(inst.name)}")
                lines.append(f"# TYPE {metric} {inst.kind}")
            if isinstance(inst, (Counter, Gauge)):
                lines.append(
                    f"{metric}{_prom_labels(inst.labels)} "
                    f"{_format_num(inst.value)}"
                )
            else:
                for bound, cumulative in inst.cumulative():
                    le = "+Inf" if bound == float("inf") else _format_num(bound)
                    extra = inst.labels + (("le", le),)
                    lines.append(
                        f"{metric}_bucket{_prom_labels(extra)} {cumulative}"
                    )
                lines.append(
                    f"{metric}_sum{_prom_labels(inst.labels)} "
                    f"{_format_num(inst.sum)}"
                )
                lines.append(
                    f"{metric}_count{_prom_labels(inst.labels)} {inst.count}"
                )
        return "\n".join(lines) + ("\n" if lines else "")

    def to_openmetrics(self, prefix: str = "repro") -> str:
        """OpenMetrics text exposition **with exemplars**.

        Same families as :meth:`to_prometheus`, in OpenMetrics
        clothing: counters gain the ``_total`` sample suffix,
        histogram bucket samples carry their last exemplar as
        ``# {trace_id="rtx-…"} <value>``, and the document ends with
        the mandatory ``# EOF``.  This is the only rendering that
        reads :attr:`Histogram.exemplars` — trace ids appear on the
        live, content-negotiated ``/metrics`` scrape and nowhere in
        the deterministic exports.
        """
        lines: List[str] = []
        seen_types: Dict[str, str] = {}
        for inst in self:
            metric = _prom_name(prefix, inst.name)
            if metric not in seen_types:
                seen_types[metric] = inst.kind
                lines.append(f"# HELP {metric} {_prom_help(inst.name)}")
                lines.append(f"# TYPE {metric} {inst.kind}")
            if isinstance(inst, Counter):
                lines.append(
                    f"{metric}_total{_prom_labels(inst.labels)} "
                    f"{_format_num(inst.value)}"
                )
            elif isinstance(inst, Gauge):
                lines.append(
                    f"{metric}{_prom_labels(inst.labels)} "
                    f"{_format_num(inst.value)}"
                )
            else:
                for index, (bound, cumulative) in enumerate(
                    inst.cumulative()
                ):
                    le = "+Inf" if bound == float("inf") else _format_num(bound)
                    extra = inst.labels + (("le", le),)
                    sample = (
                        f"{metric}_bucket{_prom_labels(extra)} {cumulative}"
                    )
                    exemplar = inst.exemplars.get(index)
                    if exemplar is not None:
                        value, trace_id = exemplar
                        sample += (
                            ' # {trace_id="'
                            + _escape_label_value(trace_id)
                            + '"} '
                            + _format_num(value)
                        )
                    lines.append(sample)
                lines.append(
                    f"{metric}_sum{_prom_labels(inst.labels)} "
                    f"{_format_num(inst.sum)}"
                )
                lines.append(
                    f"{metric}_count{_prom_labels(inst.labels)} {inst.count}"
                )
        lines.append("# EOF")
        return "\n".join(lines) + "\n"


def _format_num(value: Number) -> str:
    """Render ints without a trailing ``.0``; floats via repr."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def _prom_name(prefix: str, name: str) -> str:
    """Dotted hierarchical name -> legal Prometheus metric name."""
    cleaned = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    return f"{prefix}_{cleaned}" if prefix else cleaned


def _prom_help(text: str) -> str:
    """Escape HELP text per the exposition format (``\\`` and LF)."""
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _escape_label_value(value: str) -> str:
    """Escape a label value: backslash, double-quote and newline."""
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _prom_labels(labels: LabelKey) -> str:
    if not labels:
        return ""
    rendered = ",".join(
        '{}="{}"'.format(k, _escape_label_value(str(v))) for k, v in labels
    )
    return "{" + rendered + "}"


#: Diagnostic registries appended to the live ``/metrics`` exposition.
#:
#: Subsystems whose counters describe *how* a run executed rather than
#: *what* it computed (cell-cache hits, work-steals, native-dispatch
#: stats) register a private :class:`MetricsRegistry` here instead of
#: touching the process-global hub registry: the deterministic
#: ``--metrics``/``--trace`` exports must stay byte-identical across
#: cache states and job counts, and operational counters would break
#: that contract.  The observability server renders each entry after
#: the main registry; nothing else reads this list.
DIAG_REGISTRIES: List[MetricsRegistry] = []


# ----------------------------------------------------------------------
# Exposition lint

#: Exposition-format sample-line grammar (metric, optional label set
#: with escaped values, a numeric value).  Shared by the telemetry
#: tests, the live-server tests and the CI smoke validation.
_PROM_LABEL = r'[a-zA-Z_][a-zA-Z0-9_]*="(?:\\.|[^"\\\n])*"'
_PROM_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    rf"(?:\{{{_PROM_LABEL}(?:,{_PROM_LABEL})*\}})?"
    r" -?(?:[0-9.e+-]+|[0-9]+)$"
)
_PROM_COMMENT = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* \S")


def lint_prometheus(text: str) -> List[str]:
    """Lines of *text* that violate the exposition-format grammar.

    Empty result means the document lints clean.  Deliberately
    strict — it is the gate both ``to_prometheus`` unit tests and the
    live ``/metrics`` endpoint are held to.
    """
    bad: List[str] = []
    for line in text.splitlines():
        if not line:
            continue
        if _PROM_COMMENT.match(line) or _PROM_SAMPLE.match(line):
            continue
        bad.append(line)
    return bad


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "LATENCY_BUCKETS_SECONDS",
    "DIAG_REGISTRIES",
    "lint_prometheus",
]
