"""Self-contained HTML reports and regression checks over the ledger.

Closes the observability loop: raw counters land in BENCH_*.json and
the run ledger (:mod:`repro.telemetry.ledger`); this module turns them
into something a human (or a CI gate) reads:

* :func:`build_html` — one dependency-free HTML file (inline CSS,
  inline SVG sparklines, **no network access**) with three sections:
  per-mechanism simulator-overhead bars, the latest benchmark metric
  tables from ``BENCH_engine/exec/sim.json``, and perf-trajectory
  sparklines over the ledger history of every recorded series.
* :func:`check_regressions` — the ``repro report --check`` gate: for
  every ledger series, compare the latest ``throughput`` (or other
  chosen metric) against the **median of the prior history**; a drop
  beyond the threshold (default 20%) is a failure.  The median makes
  the gate robust to one noisy CI machine in the history, and series
  with fewer than ``min_history`` prior points pass, so a fresh
  ledger is green by construction.

Everything here is pure formatting over dicts — no telemetry state is
touched, so it can run on artifacts from another machine.
"""

from __future__ import annotations

import glob
import html
import json
import os
import statistics
from typing import Dict, List, Optional, Sequence, Tuple

from .export import write_json, write_text_atomic
from .ledger import RunLedger

#: Default relative throughput drop that fails ``repro report --check``.
DEFAULT_REGRESSION_THRESHOLD = 0.20

#: Schema tag stamped into the ``repro report --json`` summary.
REPORT_SUMMARY_SCHEMA = "repro.telemetry.report/v1"

#: Prior runs a series needs before the regression gate applies to it.
DEFAULT_MIN_HISTORY = 2


# ----------------------------------------------------------------------
# Inputs


def load_bench_documents(directory: str) -> Dict[str, Dict]:
    """All ``BENCH_*.json`` documents in *directory*, keyed by stem.

    Unreadable or non-JSON files are skipped (a half-written benchmark
    artifact must not take the report down with it).
    """
    documents: Dict[str, Dict] = {}
    pattern = os.path.join(directory, "BENCH_*.json")
    for path in sorted(glob.glob(pattern)):
        stem = os.path.splitext(os.path.basename(path))[0]
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            continue
        if isinstance(document, dict):
            documents[stem] = document
    return documents


# ----------------------------------------------------------------------
# Regression gate


def check_regressions(
    ledger: RunLedger,
    *,
    metric: str = "throughput",
    threshold: float = DEFAULT_REGRESSION_THRESHOLD,
    min_history: int = DEFAULT_MIN_HISTORY,
) -> List[str]:
    """Failure messages for series whose latest value regressed.

    For each series in *ledger* carrying *metric*: with at least
    *min_history* prior points, the latest value must not fall more
    than *threshold* below the **median of the prior points**.  Series
    with too little history pass (a fresh ledger is green by
    construction).  Returns human-readable failure strings; empty
    means the gate passes.
    """
    failures: List[str] = []
    for name in ledger.names():
        series = ledger.series(name, metric)
        if len(series) < min_history + 1:
            continue
        latest = series[-1]
        baseline = statistics.median(series[:-1])
        if baseline <= 0:
            continue
        drop = 1.0 - latest / baseline
        if drop > threshold:
            failures.append(
                f"{name}: {metric} {latest:.6g} is {drop * 100:.1f}% below "
                f"the ledger median {baseline:.6g} "
                f"(threshold {threshold * 100:.0f}%, "
                f"{len(series) - 1} prior runs)"
            )
    return failures


def bisect_regressions(
    ledger: RunLedger,
    *,
    metric: str = "throughput",
    threshold: float = DEFAULT_REGRESSION_THRESHOLD,
) -> Dict[str, Dict[str, object]]:
    """Pin the first commit where each gated series regressed.

    The ledger anchors every record to a git SHA, so a regression can
    be *bisected* offline: for each series carrying *metric*, group
    its values by commit in first-seen order and walk the commits
    chronologically; the culprit is the first commit whose median
    value falls more than *threshold* below the median of everything
    recorded before it.  Robust to a noisy run on either side of the
    boundary (medians on both) and needs no checkouts or reruns —
    CI history alone answers "which commit made fig12 slow?".

    Returns ``series name -> {sha, value, baseline, drop_fraction,
    prior_commits}`` for regressed series only; an empty dict means no
    series shows a commit-attributable regression.
    """
    out: Dict[str, Dict[str, object]] = {}
    for name in ledger.names():
        commits: List[str] = []
        values: Dict[str, List[float]] = {}
        for record in ledger.read():
            if record.get("name") != name:
                continue
            metrics = record.get("metrics")
            if not isinstance(metrics, dict) or metric not in metrics:
                continue
            try:
                value = float(metrics[metric])
            except (TypeError, ValueError):
                continue
            sha = str(record.get("git_sha", "unknown"))
            if sha not in values:
                commits.append(sha)
                values[sha] = []
            values[sha].append(value)
        prior: List[float] = []
        for index, sha in enumerate(commits):
            if prior:
                baseline = statistics.median(prior)
                current = statistics.median(values[sha])
                if baseline > 0:
                    drop = 1.0 - current / baseline
                    if drop > threshold:
                        out[name] = {
                            "sha": sha,
                            "value": current,
                            "baseline": baseline,
                            "drop_fraction": round(drop, 6),
                            "prior_commits": index,
                        }
                        break
            prior.extend(values[sha])
    return out


def gateable_series(
    ledger: RunLedger,
    *,
    metric: str = "throughput",
    min_history: int = DEFAULT_MIN_HISTORY,
) -> List[str]:
    """Series names with enough history for the gate to compare.

    A series is gateable once it carries ``min_history`` prior values
    *plus* a latest one for *metric*.  ``repro report --check`` uses
    an empty result to say, explicitly, that it had nothing to gate —
    rather than printing a silently-vacuous "passed".
    """
    return [
        name
        for name in ledger.names()
        if len(ledger.series(name, metric)) >= min_history + 1
    ]


# ----------------------------------------------------------------------
# Machine-readable summary (``repro report --json``)


def build_summary(
    ledger: RunLedger,
    bench_docs: Optional[Dict[str, Dict]] = None,
    *,
    metric: str = "throughput",
    threshold: float = DEFAULT_REGRESSION_THRESHOLD,
    min_history: int = DEFAULT_MIN_HISTORY,
) -> Dict[str, object]:
    """One JSON document with everything a CI step branches on.

    Latest-vs-median per series, the regression verdicts, the
    telemetry-overhead budget from ``BENCH_sim.json``, and the latest
    per-phase wall-time attribution — the machine-readable companion
    of :func:`build_html`, written by ``repro report --json``.
    """
    bench_docs = bench_docs or {}
    failures = check_regressions(
        ledger, metric=metric, threshold=threshold, min_history=min_history
    )
    failed = {message.split(":", 1)[0] for message in failures}
    series_out: Dict[str, object] = {}
    for name in ledger.names():
        series = ledger.series(name, metric)
        if not series:
            continue
        latest = series[-1]
        prior = series[:-1]
        median_prior = statistics.median(prior) if prior else None
        drop = (
            1.0 - latest / median_prior
            if median_prior and median_prior > 0
            else None
        )
        series_out[name] = {
            "runs": len(series),
            "latest": latest,
            "median_prior": median_prior,
            "drop_fraction": round(drop, 6) if drop is not None else None,
            "gated": len(series) >= min_history + 1,
            "regressed": name in failed,
        }
    summary: Dict[str, object] = {
        "schema": REPORT_SUMMARY_SCHEMA,
        "metric": metric,
        "threshold": threshold,
        "min_history": min_history,
        "gateable_series": gateable_series(
            ledger, metric=metric, min_history=min_history
        ),
        "failures": failures,
        "failure_count": len(failures),
        "series": series_out,
        "phases": latest_phase_attribution(ledger),
        "fabric": latest_fabric_counters(ledger),
        "serve": latest_serve_stats(ledger),
    }
    sim = bench_docs.get("BENCH_sim")
    overhead = sim.get("telemetry_overhead") if isinstance(sim, dict) else None
    summary["telemetry_overhead"] = (
        overhead if isinstance(overhead, dict) else None
    )
    return summary


def write_summary(
    path: str,
    ledger: RunLedger,
    bench_docs: Optional[Dict[str, Dict]] = None,
    **kwargs,
) -> Tuple[str, Dict[str, object]]:
    """Render and atomically write the JSON summary; returns
    ``(path, summary)``."""
    summary = build_summary(ledger, bench_docs, **kwargs)
    write_json(path, summary)
    return path, summary


def latest_phase_attribution(ledger: RunLedger) -> Dict[str, float]:
    """Per-phase seconds summed over the **latest** record of each
    series that carries a ``phases`` block (live-plane attribution)."""
    latest: Dict[str, Dict[str, float]] = {}
    for record in ledger.read():
        phases = record.get("phases")
        name = record.get("name")
        if isinstance(phases, dict) and isinstance(name, str):
            latest[name] = {
                k: float(v)
                for k, v in phases.items()
                if isinstance(v, (int, float))
            }
    totals: Dict[str, float] = {}
    for phases in latest.values():
        for phase, seconds in phases.items():
            totals[phase] = round(totals.get(phase, 0.0) + seconds, 6)
    return dict(sorted(totals.items()))


def latest_fabric_counters(ledger: RunLedger) -> Dict[str, int]:
    """Fabric cell counters summed over the **latest** record of each
    series that carries a ``fabric`` block (cells skipped/stolen/
    redispatched — the machine-readable view of cache effectiveness)."""
    latest: Dict[str, Dict[str, int]] = {}
    for record in ledger.read():
        fabric = record.get("fabric")
        name = record.get("name")
        if isinstance(fabric, dict) and isinstance(name, str):
            latest[name] = {
                k: int(v)
                for k, v in fabric.items()
                if isinstance(v, (int, float))
            }
    totals: Dict[str, int] = {}
    for counters in latest.values():
        for key, count in counters.items():
            totals[key] = totals.get(key, 0) + count
    return dict(sorted(totals.items()))


def latest_serve_stats(
    ledger: RunLedger,
) -> Dict[str, Dict[str, object]]:
    """The **latest** ``serve`` block per series, keyed by series name.

    Unlike the fabric counters, serving-plane blocks are not summable
    (hit rates and latency percentiles describe one run), so the
    summary keeps each series' most recent block whole — the
    ``repro report --json`` view of how the daemon performed last
    time the serve benchmark/smoke ran.
    """
    latest: Dict[str, Dict[str, object]] = {}
    for record in ledger.read():
        serve = record.get("serve")
        name = record.get("name")
        if isinstance(serve, dict) and isinstance(name, str):
            latest[name] = dict(serve)
    return dict(sorted(latest.items()))


# ----------------------------------------------------------------------
# HTML rendering helpers (all inline; the file must be self-contained)

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 64rem; color: #1a1a2e; }
h1 { border-bottom: 2px solid #1a1a2e; padding-bottom: .3rem; }
h2 { margin-top: 2rem; }
table { border-collapse: collapse; margin: .8rem 0; font-size: .9rem; }
th, td { border: 1px solid #c8c8d8; padding: .25rem .6rem;
         text-align: right; }
th { background: #eef0f6; }
td.k, th.k { text-align: left; font-family: ui-monospace, monospace; }
.bar { display: inline-block; height: .8rem; background: #4466cc;
       vertical-align: middle; }
.bar.warn { background: #cc5544; }
.meta { color: #667; font-size: .8rem; }
.fail { color: #b00020; font-weight: 600; }
.ok { color: #107040; font-weight: 600; }
svg.spark { vertical-align: middle; }
"""


def _esc(value: object) -> str:
    return html.escape(str(value))


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:,.3f}".rstrip("0").rstrip(".")
    if isinstance(value, int):
        return f"{value:,}"
    return _esc(value)


def sparkline_svg(
    values: Sequence[float], *, width: int = 140, height: int = 28
) -> str:
    """Inline SVG polyline sparkline for *values* (last point marked)."""
    points = [float(v) for v in values]
    if not points:
        return ""
    if len(points) == 1:
        points = points * 2
    lo, hi = min(points), max(points)
    span = (hi - lo) or 1.0
    pad = 2.0
    step = (width - 2 * pad) / (len(points) - 1)
    coords = [
        (
            round(pad + i * step, 2),
            round(height - pad - (v - lo) / span * (height - 2 * pad), 2),
        )
        for i, v in enumerate(points)
    ]
    path = " ".join(f"{x},{y}" for x, y in coords)
    lx, ly = coords[-1]
    return (
        f'<svg class="spark" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" '
        'xmlns="http://www.w3.org/2000/svg">'
        f'<polyline fill="none" stroke="#4466cc" stroke-width="1.5" '
        f'points="{path}"/>'
        f'<circle cx="{lx}" cy="{ly}" r="2.5" fill="#cc5544"/>'
        "</svg>"
    )


def _bar(fraction: float, *, warn: bool = False, scale: float = 220) -> str:
    width = max(1, int(round(min(max(fraction, 0.0), 1.0) * scale)))
    cls = "bar warn" if warn else "bar"
    return f'<span class="{cls}" style="width:{width}px"></span>'


def _overhead_section(bench_docs: Dict[str, Dict]) -> List[str]:
    """Per-mechanism simulator overhead bars from BENCH_sim.json."""
    sim = bench_docs.get("BENCH_sim")
    if not sim or "models" not in sim:
        return []
    lines = ["<h2>Per-mechanism simulator throughput</h2>", "<table>"]
    lines.append(
        "<tr><th class=k>mechanism</th><th>records/s (columnar)</th>"
        "<th>speedup vs scalar</th><th></th></tr>"
    )
    models = sim["models"]
    try:
        top = max(
            float(row.get("columnar_records_per_second", 0) or 0)
            for row in models.values()
        ) or 1.0
    except ValueError:
        return []
    for name in sorted(models):
        row = models[name]
        rps = float(row.get("columnar_records_per_second", 0) or 0)
        speedup = row.get("geomean_speedup", "")
        lines.append(
            f"<tr><td class=k>{_esc(name)}</td><td>{_fmt(rps)}</td>"
            f"<td>{_fmt(speedup)}×</td><td>{_bar(rps / top)}</td></tr>"
        )
    lines.append("</table>")
    overhead = sim.get("telemetry_overhead")
    if isinstance(overhead, dict):
        pct = float(overhead.get("overhead_fraction", 0.0)) * 100
        budget = float(overhead.get("budget_fraction", 0.05)) * 100
        cls = "ok" if pct <= budget else "fail"
        lines.append(
            f'<p>Telemetry overhead (metrics on): <span class="{cls}">'
            f"{pct:.2f}%</span> of a {budget:.0f}% budget "
            f"(sampling {_esc(overhead.get('sample', '1'))}).</p>"
        )
    return lines


def _bench_tables(bench_docs: Dict[str, Dict]) -> List[str]:
    """Flat key→value tables for each BENCH_*.json document."""
    lines: List[str] = []
    for stem in sorted(bench_docs):
        document = bench_docs[stem]
        lines.append(f"<h2>{_esc(stem)}</h2>")
        lines.append("<table>")
        lines.append("<tr><th class=k>metric</th><th>value</th></tr>")
        for key in sorted(document):
            value = document[key]
            if isinstance(value, (dict, list)):
                continue
            lines.append(
                f"<tr><td class=k>{_esc(key)}</td>"
                f"<td>{_fmt(value)}</td></tr>"
            )
        lines.append("</table>")
    return lines


def _trajectory_section(
    ledger: RunLedger, metric: str, failures: Sequence[str]
) -> List[str]:
    names = ledger.names()
    lines = ["<h2>Perf trajectory (ledger history)</h2>"]
    if not names:
        lines.append("<p class=meta>No ledger records yet.</p>")
        return lines
    failed = {message.split(":", 1)[0] for message in failures}
    lines.append("<table>")
    lines.append(
        f"<tr><th class=k>series</th><th>runs</th><th>latest {metric}"
        "</th><th>median</th><th>trend</th><th>status</th></tr>"
    )
    for name in names:
        series = ledger.series(name, metric)
        if not series:
            continue
        latest = series[-1]
        baseline = (
            statistics.median(series[:-1]) if len(series) > 1 else latest
        )
        status = (
            '<span class=fail>regressed</span>'
            if name in failed
            else '<span class=ok>ok</span>'
        )
        lines.append(
            f"<tr><td class=k>{_esc(name)}</td><td>{len(series)}</td>"
            f"<td>{_fmt(latest)}</td><td>{_fmt(baseline)}</td>"
            f"<td>{sparkline_svg(series)}</td><td>{status}</td></tr>"
        )
    lines.append("</table>")
    return lines


def _phase_section(ledger: RunLedger) -> List[str]:
    """Per-phase wall-time attribution from the latest ledger records."""
    totals = latest_phase_attribution(ledger)
    if not totals:
        return []
    grand = sum(totals.values()) or 1.0
    lines = ["<h2>Phase attribution (latest runs)</h2>", "<table>"]
    lines.append(
        "<tr><th class=k>phase</th><th>seconds</th><th>share</th>"
        "<th></th></tr>"
    )
    for phase, seconds in sorted(
        totals.items(), key=lambda kv: -kv[1]
    ):
        share = seconds / grand
        lines.append(
            f"<tr><td class=k>{_esc(phase)}</td><td>{_fmt(seconds)}</td>"
            f"<td>{share * 100:.1f}%</td><td>{_bar(share)}</td></tr>"
        )
    lines.append("</table>")
    lines.append(
        "<p class=meta>compile / trace_expand / sim / export wall "
        "seconds, summed over the latest ledger record of each series "
        "that carries them.</p>"
    )
    return lines


def _serve_section(ledger: RunLedger) -> List[str]:
    """Serving-plane summary from the latest serve ledger blocks."""
    blocks = latest_serve_stats(ledger)
    if not blocks:
        return []
    lines = ["<h2>Serving plane (latest runs)</h2>", "<table>"]
    lines.append(
        "<tr><th class=k>series</th><th>req/s</th><th>hit rate</th>"
        "<th>batch occ.</th><th>p50 ms</th><th>p99 ms</th></tr>"
    )
    def cell(value: object) -> str:
        return "&ndash;" if value is None else _fmt(value)

    for name, block in blocks.items():
        latency = block.get("latency_ms")
        latency = latency if isinstance(latency, dict) else {}
        lines.append(
            f"<tr><td class=k>{_esc(name)}</td>"
            f"<td>{cell(block.get('requests_per_second'))}</td>"
            f"<td>{cell(block.get('hit_rate'))}</td>"
            f"<td>{cell(block.get('batch_occupancy'))}</td>"
            f"<td>{cell(latency.get('p50'))}</td>"
            f"<td>{cell(latency.get('p99'))}</td></tr>"
        )
    lines.append("</table>")
    lines.append(
        "<p class=meta>repro.serve daemon throughput: coalesced + "
        "cached request serving, from each series' most recent "
        "ledger record carrying a serve block.</p>"
    )
    slow: List[Tuple[str, Dict[str, object]]] = []
    for name, block in blocks.items():
        captures = block.get("slow_requests")
        if isinstance(captures, list):
            slow.extend(
                (name, capture)
                for capture in captures
                if isinstance(capture, dict)
            )
    if slow:
        slow.sort(
            key=lambda pair: -float(pair[1].get("elapsed_ms") or 0.0)
        )
        lines.append("<h2>Slow requests (forensics)</h2>")
        lines.append("<table>")
        lines.append(
            "<tr><th class=k>series</th><th class=k>trace</th>"
            "<th>elapsed ms</th><th>threshold ms</th>"
            "<th class=k>source</th><th class=k>digest</th></tr>"
        )
        for name, capture in slow[:16]:
            digest = str(capture.get("digest") or "")
            lines.append(
                f"<tr><td class=k>{_esc(name)}</td>"
                f"<td class=k>{_esc(capture.get('trace_id'))}</td>"
                f"<td>{_fmt(capture.get('elapsed_ms'))}</td>"
                f"<td>{_fmt(capture.get('threshold_ms'))}</td>"
                f"<td class=k>{_esc(capture.get('source'))}</td>"
                f"<td class=k>{_esc(digest[:16])}</td></tr>"
            )
        lines.append("</table>")
        lines.append(
            "<p class=meta>requests the daemon captured above its slow "
            "threshold; feed a trace id to <code>repro trace show</code> "
            "against a live daemon for the per-stage waterfall.</p>"
        )
    return lines


def build_html(
    ledger: RunLedger,
    bench_docs: Optional[Dict[str, Dict]] = None,
    *,
    metric: str = "throughput",
    threshold: float = DEFAULT_REGRESSION_THRESHOLD,
    title: str = "repro run report",
) -> Tuple[str, List[str]]:
    """Render the self-contained HTML report.

    Returns ``(html_text, failures)`` where *failures* is the
    :func:`check_regressions` result embedded in the report header —
    so ``repro report`` renders and gates from one pass.
    """
    bench_docs = bench_docs or {}
    failures = check_regressions(ledger, metric=metric, threshold=threshold)
    records = ledger.read()
    latest_sha = records[-1].get("git_sha", "unknown") if records else "n/a"
    parts: List[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{_esc(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{_esc(title)}</h1>",
        f"<p class=meta>{len(records)} ledger records · "
        f"latest git {_esc(latest_sha)} · regression threshold "
        f"{threshold * 100:.0f}% vs ledger median</p>",
    ]
    if failures:
        parts.append("<p class=fail>Regressions detected:</p><ul>")
        parts.extend(
            f"<li class=fail>{_esc(message)}</li>" for message in failures
        )
        parts.append("</ul>")
    else:
        parts.append('<p class=ok>No regressions against ledger history.</p>')
    parts.extend(_overhead_section(bench_docs))
    parts.extend(_trajectory_section(ledger, metric, failures))
    parts.extend(_phase_section(ledger))
    parts.extend(_serve_section(ledger))
    parts.extend(_bench_tables(bench_docs))
    parts.append("</body></html>")
    return "\n".join(parts) + "\n", failures


def write_report(
    path: str,
    ledger: RunLedger,
    bench_docs: Optional[Dict[str, Dict]] = None,
    **kwargs,
) -> Tuple[str, List[str]]:
    """Render and atomically write the report; returns (path, failures)."""
    text, failures = build_html(ledger, bench_docs, **kwargs)
    write_text_atomic(path, text)
    return path, failures


__all__ = [
    "DEFAULT_REGRESSION_THRESHOLD",
    "DEFAULT_MIN_HISTORY",
    "REPORT_SUMMARY_SCHEMA",
    "load_bench_documents",
    "check_regressions",
    "bisect_regressions",
    "gateable_series",
    "build_summary",
    "write_summary",
    "latest_phase_attribution",
    "latest_fabric_counters",
    "latest_serve_stats",
    "sparkline_svg",
    "build_html",
    "write_report",
]
