"""Process-wide telemetry hub.

One :class:`Telemetry` facade bundles the three collection surfaces —
:class:`~repro.telemetry.registry.MetricsRegistry` (counters/gauges/
histograms), :class:`~repro.telemetry.events.FlightRecorder` (ring-
buffered structured events) and :class:`~repro.telemetry.spans.Tracer`
(span timeline) — behind a single ``enabled`` flag.

The module-level :data:`TELEMETRY` instance starts **disabled**: every
instrumentation point in the executor, hardware units and simulator
first tests ``TELEMETRY.enabled`` (one attribute load) and touches
nothing else, which is what keeps the reproduction's hot paths at seed
speed when nobody asked for observability.

Typical use::

    from repro.telemetry import configure, get_telemetry
    configure(enabled=True)
    ... run experiments ...
    t = get_telemetry()
    write_metrics("out/metrics.json", t.registry, recorder=t.recorder)
    write_chrome_trace("out/trace.json", t.tracer, t.recorder)

Tests and benchmarks use :func:`capture`, which swaps in a fresh,
enabled hub for the ``with`` body and restores the previous state
afterwards.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from typing import ContextManager, Iterator, Optional

from .events import EventKind, FlightRecorder, TelemetryEvent
from .registry import Counter, MetricsRegistry
from .spans import LogicalClock, Tracer, WallClock


class Telemetry:
    """Facade over registry + flight recorder + tracer."""

    __slots__ = (
        "enabled",
        "deterministic",
        "registry",
        "recorder",
        "tracer",
        "clock",
        "_ring_capacity",
        "_sample_every",
    )

    def __init__(
        self,
        *,
        enabled: bool = False,
        ring_capacity: int = 8192,
        sample_every: int = 1,
        deterministic: bool = True,
    ) -> None:
        self.enabled = enabled
        self.deterministic = deterministic
        self._ring_capacity = ring_capacity
        self._sample_every = sample_every
        self.reset()

    # ------------------------------------------------------------------
    # Lifecycle

    def reset(self) -> None:
        """Fresh registry/recorder/tracer (settings preserved)."""
        self.clock = LogicalClock() if self.deterministic else WallClock()
        self.registry = MetricsRegistry()
        self.recorder = FlightRecorder(
            self._ring_capacity, sample_every=self._sample_every
        )
        self.tracer = Tracer(self.clock)

    def configure(
        self,
        *,
        enabled: Optional[bool] = None,
        ring_capacity: Optional[int] = None,
        sample_every: Optional[int] = None,
        deterministic: Optional[bool] = None,
        reset: bool = True,
    ) -> "Telemetry":
        """Update settings; by default also resets collected state."""
        if enabled is not None:
            self.enabled = enabled
        if ring_capacity is not None:
            self._ring_capacity = ring_capacity
        if sample_every is not None:
            self._sample_every = sample_every
        if deterministic is not None:
            self.deterministic = deterministic
        if reset:
            self.reset()
        return self

    # ------------------------------------------------------------------
    # Collection shortcuts (all no-ops while disabled)

    def emit(
        self, kind: EventKind, /, **payload: object
    ) -> Optional[TelemetryEvent]:
        """Publish one event onto the bus (None while disabled)."""
        if not self.enabled:
            return None
        return self.recorder.emit(kind, self.clock.now(), **payload)

    def counter(self, name: str, **labels: object) -> Counter:
        """Registry counter accessor (valid even while disabled)."""
        return self.registry.counter(name, **labels)

    def span(
        self, name: str, category: str = "", *, tid: int = 0, **args: object
    ) -> ContextManager:
        """Span context manager; a no-op context while disabled."""
        if not self.enabled:
            return nullcontext()
        return self.tracer.span(name, category, tid=tid, **args)

    # ------------------------------------------------------------------

    def summary(self, top: int = 12) -> str:
        """Human-oriented digest for ``--verbose-telemetry``."""
        snap = self.registry.snapshot()
        counters = sorted(
            snap["counters"].items(), key=lambda kv: (-kv[1], kv[0])
        )
        lines = [
            f"telemetry: {len(self.registry)} metrics, "
            f"{self.recorder.emitted} events buffered "
            f"({self.recorder.dropped} overwritten, "
            f"{self.recorder.sampled_out} sampled out), "
            f"{len(self.tracer.spans)} spans",
        ]
        for name, value in counters[:top]:
            lines.append(f"  {name} = {value}")
        by_kind = self.recorder.counts_by_kind()
        if by_kind:
            rendered = ", ".join(f"{k}:{v}" for k, v in by_kind.items())
            lines.append(f"  events by kind: {rendered}")
        return "\n".join(lines)


#: The process-global hub every instrumentation point consults.
TELEMETRY = Telemetry()


def get_telemetry() -> Telemetry:
    """The process-global telemetry hub."""
    return TELEMETRY


def telemetry_enabled() -> bool:
    """Fast global enabled check."""
    return TELEMETRY.enabled


def configure(**kwargs) -> Telemetry:
    """Configure (and reset) the global hub; returns it."""
    return TELEMETRY.configure(**kwargs)


def emit_event(
    kind: EventKind, /, **payload: object
) -> Optional[TelemetryEvent]:
    """Module-level emission shortcut bound to the global hub."""
    t = TELEMETRY
    if not t.enabled:
        return None
    return t.recorder.emit(kind, t.clock.now(), **payload)


@contextmanager
def capture(
    *,
    ring_capacity: int = 8192,
    sample_every: int = 1,
    deterministic: bool = True,
) -> Iterator[Telemetry]:
    """Swap in a fresh enabled hub for the body; restore afterwards.

    The *same* global object is reused (so module-level references
    stay valid) but its state is saved and restored, making nested
    captures and test isolation safe.
    """
    t = TELEMETRY
    saved = (
        t.enabled,
        t.deterministic,
        t.registry,
        t.recorder,
        t.tracer,
        t.clock,
        t._ring_capacity,
        t._sample_every,
    )
    try:
        t.configure(
            enabled=True,
            ring_capacity=ring_capacity,
            sample_every=sample_every,
            deterministic=deterministic,
        )
        yield t
    finally:
        (
            t.enabled,
            t.deterministic,
            t.registry,
            t.recorder,
            t.tracer,
            t.clock,
            t._ring_capacity,
            t._sample_every,
        ) = saved


__all__ = [
    "Telemetry",
    "TELEMETRY",
    "get_telemetry",
    "telemetry_enabled",
    "configure",
    "emit_event",
    "capture",
]
