"""Process-wide telemetry hub.

One :class:`Telemetry` facade bundles the three collection surfaces —
:class:`~repro.telemetry.registry.MetricsRegistry` (counters/gauges/
histograms), :class:`~repro.telemetry.events.FlightRecorder` (ring-
buffered structured events) and :class:`~repro.telemetry.spans.Tracer`
(span timeline) — behind a single ``enabled`` flag.

The module-level :data:`TELEMETRY` instance starts **disabled**: every
instrumentation point in the executor, hardware units and simulator
first tests ``TELEMETRY.enabled`` (one attribute load) and touches
nothing else, which is what keeps the reproduction's hot paths at seed
speed when nobody asked for observability.

Typical use::

    from repro.telemetry import configure, get_telemetry
    configure(enabled=True)
    ... run experiments ...
    t = get_telemetry()
    write_metrics("out/metrics.json", t.registry, recorder=t.recorder)
    write_chrome_trace("out/trace.json", t.tracer, t.recorder)

Tests and benchmarks use :func:`capture`, which swaps in a fresh,
enabled hub for the ``with`` body and restores the previous state
afterwards.
"""

from __future__ import annotations

import hashlib
import os
from contextlib import contextmanager, nullcontext
from typing import ContextManager, Iterator, Optional

from .events import EventKind, FlightRecorder, TelemetryEvent
from .registry import Counter, MetricsRegistry
from .spans import LogicalClock, Tracer, WallClock

#: Environment variable controlling fast-path event sampling.  The
#: columnar issue loop and the native C executor record one
#: ``WARP_ISSUE`` event per scheduler run; ``REPRO_TELEMETRY_SAMPLE``
#: (``"1/N"`` or plain ``"N"``) keeps every Nth of those.  Unset or
#: ``"1"`` keeps all of them.  The *phase* of the sampling comb is
#: derived from a stable hash of the trace name (see
#: :func:`sample_phase`), so the same seeded workload yields the same
#: event ring in every process — across reruns and ``--jobs`` values.
SAMPLE_ENV = "REPRO_TELEMETRY_SAMPLE"


def resolve_sample_every(
    choice: Optional[str] = None, default: int = 1
) -> int:
    """Keep-every-N sampling interval for fast-path scheduler events.

    ``None`` consults ``REPRO_TELEMETRY_SAMPLE``; an unset or empty
    variable returns *default*.  Accepted spellings are ``"1/N"``
    (keep one in N) and plain ``"N"``; anything else raises
    :class:`ValueError` so typos fail loudly instead of silently
    changing what gets recorded.
    """
    if choice is None:
        choice = os.environ.get(SAMPLE_ENV, "")
    raw = choice.strip()
    if not raw:
        return default
    try:
        if "/" in raw:
            numerator, denominator = raw.split("/", 1)
            if int(numerator) != 1:
                raise ValueError
            every = int(denominator)
        else:
            every = int(raw)
    except ValueError:
        raise ValueError(
            f"invalid {SAMPLE_ENV} value {raw!r} (expected '1/N' or 'N')"
        ) from None
    if every < 1:
        raise ValueError(f"{SAMPLE_ENV} must keep at least 1/N with N >= 1")
    return every


def sample_phase(key: str, every: int) -> int:
    """Deterministic sampling-comb offset in ``[0, every)`` for *key*.

    Uses SHA-256 (not ``hash``) so the phase is stable across
    processes and ``PYTHONHASHSEED`` values — a requirement for the
    byte-identical ``--jobs`` contract.
    """
    if every <= 1:
        return 0
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % every


class Telemetry:
    """Facade over registry + flight recorder + tracer."""

    __slots__ = (
        "enabled",
        "deterministic",
        "registry",
        "recorder",
        "tracer",
        "clock",
        "_ring_capacity",
        "_sample_every",
    )

    def __init__(
        self,
        *,
        enabled: bool = False,
        ring_capacity: int = 8192,
        sample_every: int = 1,
        deterministic: bool = True,
    ) -> None:
        self.enabled = enabled
        self.deterministic = deterministic
        self._ring_capacity = ring_capacity
        self._sample_every = sample_every
        self.reset()

    # ------------------------------------------------------------------
    # Lifecycle

    def reset(self) -> None:
        """Fresh registry/recorder/tracer (settings preserved)."""
        self.clock = LogicalClock() if self.deterministic else WallClock()
        self.registry = MetricsRegistry()
        self.recorder = FlightRecorder(
            self._ring_capacity, sample_every=self._sample_every
        )
        self.tracer = Tracer(self.clock)

    def configure(
        self,
        *,
        enabled: Optional[bool] = None,
        ring_capacity: Optional[int] = None,
        sample_every: Optional[int] = None,
        deterministic: Optional[bool] = None,
        reset: bool = True,
    ) -> "Telemetry":
        """Update settings; by default also resets collected state."""
        if enabled is not None:
            self.enabled = enabled
        if ring_capacity is not None:
            self._ring_capacity = ring_capacity
        if sample_every is not None:
            self._sample_every = sample_every
        if deterministic is not None:
            self.deterministic = deterministic
        if reset:
            self.reset()
        return self

    # ------------------------------------------------------------------
    # Collection shortcuts (all no-ops while disabled)

    def emit(
        self, kind: EventKind, /, **payload: object
    ) -> Optional[TelemetryEvent]:
        """Publish one event onto the bus (None while disabled)."""
        if not self.enabled:
            return None
        return self.recorder.emit(kind, self.clock.now(), **payload)

    def counter(self, name: str, **labels: object) -> Counter:
        """Registry counter accessor (valid even while disabled)."""
        return self.registry.counter(name, **labels)

    def span(
        self, name: str, category: str = "", *, tid: int = 0, **args: object
    ) -> ContextManager:
        """Span context manager; a no-op context while disabled."""
        if not self.enabled:
            return nullcontext()
        return self.tracer.span(name, category, tid=tid, **args)

    # ------------------------------------------------------------------

    def summary(self, top: int = 12) -> str:
        """Human-oriented digest for ``--verbose-telemetry``."""
        snap = self.registry.snapshot()
        counters = sorted(
            snap["counters"].items(), key=lambda kv: (-kv[1], kv[0])
        )
        lines = [
            f"telemetry: {len(self.registry)} metrics, "
            f"{self.recorder.emitted} events buffered "
            f"({self.recorder.dropped} overwritten, "
            f"{self.recorder.sampled_out} sampled out), "
            f"{len(self.tracer.spans)} spans",
        ]
        for name, value in counters[:top]:
            lines.append(f"  {name} = {value}")
        by_kind = self.recorder.counts_by_kind()
        if by_kind:
            rendered = ", ".join(f"{k}:{v}" for k, v in by_kind.items())
            lines.append(f"  events by kind: {rendered}")
        return "\n".join(lines)


#: The process-global hub every instrumentation point consults.
TELEMETRY = Telemetry()


def get_telemetry() -> Telemetry:
    """The process-global telemetry hub."""
    return TELEMETRY


def telemetry_enabled() -> bool:
    """Fast global enabled check."""
    return TELEMETRY.enabled


def configure(**kwargs) -> Telemetry:
    """Configure (and reset) the global hub; returns it."""
    return TELEMETRY.configure(**kwargs)


def emit_event(
    kind: EventKind, /, **payload: object
) -> Optional[TelemetryEvent]:
    """Module-level emission shortcut bound to the global hub."""
    t = TELEMETRY
    if not t.enabled:
        return None
    return t.recorder.emit(kind, t.clock.now(), **payload)


@contextmanager
def capture(
    *,
    ring_capacity: int = 8192,
    sample_every: int = 1,
    deterministic: bool = True,
) -> Iterator[Telemetry]:
    """Swap in a fresh enabled hub for the body; restore afterwards.

    The *same* global object is reused (so module-level references
    stay valid) but its state is saved and restored, making nested
    captures and test isolation safe.
    """
    t = TELEMETRY
    saved = (
        t.enabled,
        t.deterministic,
        t.registry,
        t.recorder,
        t.tracer,
        t.clock,
        t._ring_capacity,
        t._sample_every,
    )
    try:
        t.configure(
            enabled=True,
            ring_capacity=ring_capacity,
            sample_every=sample_every,
            deterministic=deterministic,
        )
        yield t
    finally:
        (
            t.enabled,
            t.deterministic,
            t.registry,
            t.recorder,
            t.tracer,
            t.clock,
            t._ring_capacity,
            t._sample_every,
        ) = saved


__all__ = [
    "Telemetry",
    "TELEMETRY",
    "get_telemetry",
    "telemetry_enabled",
    "configure",
    "emit_event",
    "capture",
]
