"""Live observability HTTP server: ``/metrics``, ``/healthz``,
``/progress`` (+ SSE stream).

A dependency-free threaded HTTP server over the live telemetry hub
and :class:`~repro.telemetry.progress.ProgressBoard`, so an in-flight
fig12/fig13 grid (or a future ``repro.serve`` daemon) is observable
*while it runs* instead of only after its exports land:

``GET /metrics``
    Prometheus text exposition (version 0.0.4) rendered from the
    **live** registry via
    :meth:`~repro.telemetry.registry.MetricsRegistry.to_prometheus` —
    the same renderer behind ``--metrics``, so a scrape mid-run and
    the final artifact agree on names/labels.
``GET /healthz``
    Small JSON liveness document: status, uptime, run counts.
``GET /progress``
    JSON :meth:`~repro.telemetry.progress.ProgressBoard.snapshot`
    (``?jobs=N`` bounds the per-job list).
``GET /progress/stream`` (or ``/progress?stream=1``)
    Server-Sent Events: one ``event: progress`` per board version
    change, ``: keep-alive`` comments while idle.  ``repro top``
    could ride this; it polls the JSON endpoint instead so it also
    works through one-shot proxies.  Handlers poll the client socket
    between frames (``select`` + ``MSG_PEEK``) so a dropped client
    releases its handler thread within one keep-alive interval.
``GET /trace/<id>`` and ``GET /trace``
    One request waterfall from the process-global
    :data:`~repro.telemetry.tracectx.TRACES` store, or the recent
    list (``?limit=N``).
``GET /logs``
    The structured log ring (:data:`~repro.telemetry.log.LOG`) as
    JSON; ``?level=``, ``?trace=`` and ``?limit=`` filter.

``/metrics`` content-negotiates: an ``Accept`` header naming
``application/openmetrics-text`` gets the OpenMetrics rendering with
trace-id exemplars on histogram buckets; everything else gets the
classic 0.0.4 text exposition, which never carries trace ids.

The server is strictly **read-only** over telemetry state: it never
emits events, never creates instruments, and therefore cannot perturb
the byte-identical ``--metrics``/``--trace`` contract (locked by
``tests/test_observability_server.py``).  Opt-in via ``--serve PORT``
on the experiments CLI or ``REPRO_METRICS_PORT``; port 0 binds an
ephemeral port (the chosen one is exposed as
:attr:`ObservabilityServer.port`, which tests rely on).

Shutdown discipline: :meth:`ObservabilityServer.stop` flips a
``stopping`` flag, wakes every SSE waiter through the board, stops
``serve_forever`` and then ``server_close()``s — which joins the
per-connection handler threads — so no thread of ours outlives the
call (asserted by the tests).
"""

from __future__ import annotations

import json
import os
import select
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlsplit

from .log import LOG
from .progress import PROGRESS, ProgressBoard
from .registry import DIAG_REGISTRIES
from .runtime import TELEMETRY, Telemetry
from .tracectx import TRACES

#: Environment variable enabling the server (same port semantics as
#: the ``--serve`` CLI flag; 0 = ephemeral).
SERVE_ENV = "REPRO_METRICS_PORT"

#: Content type of the Prometheus exposition endpoint.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Content type of the OpenMetrics exposition (exemplar-bearing).
OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

#: SSE idle keep-alive cadence (seconds between comment frames).
SSE_KEEPALIVE_SECONDS = 0.5


def wants_openmetrics(accept: Optional[str]) -> bool:
    """True when the ``Accept`` header asks for OpenMetrics."""
    return bool(accept) and "application/openmetrics-text" in accept


def port_from_env(environ=os.environ) -> Optional[int]:
    """The ``REPRO_METRICS_PORT`` port, or None when unset/invalid.

    Invalid values raise so a typo'd port fails loudly rather than
    silently disabling observability.
    """
    raw = environ.get(SERVE_ENV, "").strip()
    if not raw:
        return None
    try:
        port = int(raw)
    except ValueError:
        raise ValueError(
            f"invalid {SERVE_ENV} value {raw!r} (expected an integer port)"
        ) from None
    if not 0 <= port <= 65535:
        raise ValueError(f"{SERVE_ENV} must be in [0, 65535], got {port}")
    return port


def render_metrics_text(
    telemetry: Optional[Telemetry] = None, *, openmetrics: bool = False
) -> str:
    """The live ``/metrics`` body: hub registry + diagnostic registries.

    One Prometheus text document rendered from *telemetry*'s registry
    (default: the global hub) followed by every
    :data:`~repro.telemetry.registry.DIAG_REGISTRIES` entry — the
    exact composition the observability server exposes, factored out
    so other planes (the ``repro.serve`` daemon) serve an identical
    exposition.  Each render is retried a few times: another thread
    may register a new instrument mid-iteration, and instruments are
    only ever added, never removed, so a retry always converges.

    With *openmetrics* the parts come from
    :meth:`~repro.telemetry.registry.MetricsRegistry.to_openmetrics`
    (exemplar-bearing); the per-part ``# EOF`` terminators are
    stripped and exactly one closes the composed document.
    """
    hub = telemetry if telemetry is not None else TELEMETRY

    def _render(registry) -> str:
        for _ in range(5):
            try:
                if openmetrics:
                    return registry.to_openmetrics()
                return registry.to_prometheus()
            except RuntimeError:
                continue
        return ""

    parts = [_render(hub.registry)]
    parts.extend(_render(diag) for diag in DIAG_REGISTRIES)
    if openmetrics:
        stripped = []
        for part in parts:
            lines = [
                line
                for line in part.splitlines()
                if line.strip() != "# EOF"
            ]
            stripped.append("\n".join(lines) + "\n" if lines else "")
        parts = stripped
    text = "".join(part for part in parts if part)
    if openmetrics:
        text += "# EOF\n"
    return text


class _ObservabilityHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the hub/board references."""

    daemon_threads = True
    allow_reuse_address = True

    telemetry: Telemetry
    board: ProgressBoard
    stopping: bool
    started_at: float


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-observability/1"
    #: Bound read timeout so a half-open client cannot pin a handler
    #: thread past shutdown.
    timeout = 5

    # ------------------------------------------------------------------
    # Plumbing

    def log_message(self, format, *args):  # noqa: A002 - stdlib name
        """Silence per-request stderr logging (a mid-run scrape must
        not interleave with experiment output)."""

    def _send(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, document: object) -> None:
        body = (json.dumps(document, sort_keys=True) + "\n").encode("utf-8")
        self._send(status, "application/json; charset=utf-8", body)

    # ------------------------------------------------------------------
    # Routes

    def do_GET(self) -> None:  # noqa: N802 - stdlib dispatch name
        parts = urlsplit(self.path)
        path = parts.path.rstrip("/") or "/"
        query = parse_qs(parts.query)
        try:
            if path == "/metrics":
                self._get_metrics()
            elif path == "/healthz":
                self._get_healthz()
            elif path == "/progress":
                if query.get("stream", ["0"])[0] not in ("0", ""):
                    self._stream_progress()
                else:
                    self._get_progress(query)
            elif path == "/progress/stream":
                self._stream_progress()
            elif path == "/trace" or path.startswith("/trace/"):
                self._get_trace(path, query)
            elif path == "/logs":
                self._get_logs(query)
            else:
                self._send_json(
                    404,
                    {
                        "error": "not found",
                        "endpoints": [
                            "/metrics",
                            "/healthz",
                            "/progress",
                            "/progress/stream",
                            "/trace",
                            "/trace/<id>",
                            "/logs",
                        ],
                    },
                )
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response

    def _get_metrics(self) -> None:
        # Diagnostic registries (fabric cache/steal counters, serve
        # queue stats) ride only the live exposition — they are
        # operational, not part of the deterministic exports.
        openmetrics = wants_openmetrics(self.headers.get("Accept"))
        text = render_metrics_text(
            self.server.telemetry, openmetrics=openmetrics
        )
        content_type = (
            OPENMETRICS_CONTENT_TYPE
            if openmetrics
            else PROMETHEUS_CONTENT_TYPE
        )
        self._send(200, content_type, text.encode("utf-8"))

    def _get_trace(self, path: str, query) -> None:
        trace_id = path[len("/trace/"):] if path.startswith("/trace/") else ""
        if trace_id:
            document = TRACES.get(trace_id)
            if document is None:
                self._send_json(
                    404, {"error": "unknown trace", "trace_id": trace_id}
                )
                return
            self._send_json(200, document)
            return
        try:
            limit = int(query.get("limit", ["32"])[0])
        except ValueError:
            self._send_json(400, {"error": "limit must be an integer"})
            return
        self._send_json(
            200,
            {
                "schema": "repro.telemetry.trace-list/v1",
                "count": len(TRACES),
                "traces": TRACES.recent(limit=limit),
            },
        )

    def _get_logs(self, query) -> None:
        try:
            limit = int(query.get("limit", ["256"])[0])
        except ValueError:
            self._send_json(400, {"error": "limit must be an integer"})
            return
        self._send_json(
            200,
            LOG.document(
                level=query.get("level", [None])[0],
                trace_id=query.get("trace", [None])[0],
                event=query.get("event", [None])[0],
                limit=limit,
            ),
        )

    def _get_healthz(self) -> None:
        board = self.server.board
        snap = board.snapshot(max_jobs=0)
        run = snap["run"]
        self._send_json(
            200,
            {
                "status": "ok",
                "uptime_seconds": round(
                    time.perf_counter() - self.server.started_at, 3
                ),
                "run": {
                    "name": run["name"],
                    "status": run["status"],
                    "total": run["total"],
                    "done": run["done"],
                    "failed": run["failed"],
                },
                "metrics": len(self.server.telemetry.registry),
            },
        )

    def _get_progress(self, query) -> None:
        try:
            max_jobs = int(query.get("jobs", ["256"])[0])
        except ValueError:
            self._send_json(400, {"error": "jobs must be an integer"})
            return
        board = self.server.board
        self._send_json(200, board.snapshot(max_jobs=max_jobs))

    def _client_disconnected(self) -> bool:
        """True when the client hung up (readable socket + EOF peek).

        SSE clients never send bytes after the request, so a readable
        connection means either EOF (dropped client) or a stray byte —
        both reasons to release this handler thread promptly rather
        than write frames into a dead pipe until keep-alive fails.
        """
        try:
            readable, _, _ = select.select([self.connection], [], [], 0)
            if not readable:
                return False
            return self.connection.recv(1, socket.MSG_PEEK) == b""
        except OSError:
            return True

    def _stream_progress(self) -> None:
        board = self.server.board
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.end_headers()
        version = -1  # board.version starts at 0+: first wait fires
        while not self.server.stopping:
            version, changed = board.wait_for_change(
                version, timeout=SSE_KEEPALIVE_SECONDS
            )
            if self.server.stopping or self._client_disconnected():
                break
            if changed:
                payload = json.dumps(
                    board.snapshot(max_jobs=64), sort_keys=True
                )
                frame = f"event: progress\ndata: {payload}\n\n"
            else:
                frame = ": keep-alive\n\n"
            self.wfile.write(frame.encode("utf-8"))
            self.wfile.flush()


class ObservabilityServer:
    """Lifecycle wrapper: bind, serve in a thread, stop cleanly."""

    def __init__(
        self,
        port: int = 0,
        host: str = "127.0.0.1",
        *,
        telemetry: Optional[Telemetry] = None,
        board: Optional[ProgressBoard] = None,
    ) -> None:
        self.requested_port = port
        self.host = host
        self.telemetry = telemetry if telemetry is not None else TELEMETRY
        self.board = board if board is not None else PROGRESS
        self._httpd: Optional[_ObservabilityHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (resolves port-0 ephemeral binds)."""
        if self._httpd is None:
            return self.requested_port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients should hit."""
        return f"http://{self.host}:{self.port}"

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # ------------------------------------------------------------------

    def start(self) -> "ObservabilityServer":
        """Bind and serve in a named daemon thread; returns self."""
        if self._httpd is not None:
            raise RuntimeError("server already started")
        httpd = _ObservabilityHTTPServer(
            (self.host, self.requested_port), _Handler
        )
        httpd.telemetry = self.telemetry
        httpd.board = self.board
        httpd.stopping = False
        httpd.started_at = time.perf_counter()
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name=f"repro-observability:{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Stop serving and join every thread we created."""
        httpd, thread = self._httpd, self._thread
        if httpd is None:
            return
        httpd.stopping = True
        self.board.wake()  # unblock SSE waiters promptly
        httpd.shutdown()
        if thread is not None:
            thread.join(timeout)
        # Joins the per-connection handler threads (ThreadingMixIn
        # block_on_close): by now every SSE loop has seen `stopping`.
        httpd.server_close()
        self._httpd = None
        self._thread = None

    # ------------------------------------------------------------------

    def __enter__(self) -> "ObservabilityServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_server(
    port: int = 0,
    host: str = "127.0.0.1",
    *,
    telemetry: Optional[Telemetry] = None,
    board: Optional[ProgressBoard] = None,
) -> ObservabilityServer:
    """Convenience: construct + start an :class:`ObservabilityServer`."""
    return ObservabilityServer(
        port, host, telemetry=telemetry, board=board
    ).start()


__all__ = [
    "SERVE_ENV",
    "PROMETHEUS_CONTENT_TYPE",
    "OPENMETRICS_CONTENT_TYPE",
    "port_from_env",
    "render_metrics_text",
    "wants_openmetrics",
    "ObservabilityServer",
    "start_server",
]
