"""Span-based tracing of launches, experiments and simulator shards.

A :class:`Tracer` records *complete* spans (begin/end pairs) and
instants against a pluggable clock.  The default
:class:`LogicalClock` advances by a fixed step per reading, which
makes exported traces deterministic — the same seed produces a
byte-identical Perfetto file; :class:`WallClock` gives real
microsecond timings when a human wants to profile the reproduction
itself.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


class LogicalClock:
    """Deterministic monotonic clock: each reading advances one step."""

    __slots__ = ("_now", "step")

    def __init__(self, start: int = 0, step: int = 1) -> None:
        if step <= 0:
            raise ValueError("clock step must be positive")
        self._now = start
        self.step = step

    def now(self) -> int:
        """Next (strictly increasing) microsecond-like timestamp."""
        self._now += self.step
        return self._now


class WallClock:
    """Real microsecond clock (perf_counter based, zeroed at creation)."""

    __slots__ = ("_origin",)

    def __init__(self) -> None:
        self._origin = time.perf_counter_ns()

    def now(self) -> int:
        """Microseconds since the clock was created."""
        return (time.perf_counter_ns() - self._origin) // 1000


@dataclass
class Span:
    """One closed interval of work (Chrome-trace "X" event)."""

    name: str
    category: str
    start: int
    end: Optional[int] = None
    tid: int = 0
    args: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> int:
        """Span length in clock units (0 while still open)."""
        if self.end is None:
            return 0
        return self.end - self.start


@dataclass(frozen=True)
class Instant:
    """One point-in-time marker (Chrome-trace "i" event)."""

    name: str
    ts: int
    category: str = ""
    tid: int = 0
    args: Dict[str, object] = field(default_factory=dict)


class Tracer:
    """Collects spans and instants for the Perfetto exporter."""

    def __init__(self, clock: Optional[LogicalClock] = None) -> None:
        self.clock = clock if clock is not None else LogicalClock()
        self.enabled = True
        self.spans: List[Span] = []
        self.instants: List[Instant] = []
        self._open: List[Span] = []

    # ------------------------------------------------------------------

    @contextmanager
    def span(
        self,
        name: str,
        category: str = "",
        *,
        tid: int = 0,
        **args: object,
    ) -> Iterator[Optional[Span]]:
        """Record a complete span around the ``with`` body.

        Yields the open span so the body can attach result args; the
        span is closed (end timestamped) even if the body raises.
        """
        if not self.enabled:
            yield None
            return
        span = Span(
            name=name, category=category, start=self.clock.now(),
            tid=tid, args=dict(args),
        )
        self._open.append(span)
        try:
            yield span
        finally:
            span.end = self.clock.now()
            self._open.pop()
            self.spans.append(span)

    def instant(
        self, name: str, category: str = "", *, tid: int = 0, **args: object
    ) -> Optional[Instant]:
        """Record one point-in-time marker."""
        if not self.enabled:
            return None
        instant = Instant(
            name=name, ts=self.clock.now(), category=category,
            tid=tid, args=dict(args),
        )
        self.instants.append(instant)
        return instant

    # ------------------------------------------------------------------

    @property
    def depth(self) -> int:
        """Currently-open span nesting depth."""
        return len(self._open)

    def clear(self) -> None:
        """Drop all recorded (closed) spans and instants."""
        self.spans.clear()
        self.instants.clear()


__all__ = ["LogicalClock", "WallClock", "Span", "Instant", "Tracer"]
