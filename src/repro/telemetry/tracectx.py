"""Per-request trace context: deterministic IDs, contextvar
propagation, and an in-memory waterfall store.

Every served request (and, when enabled, every experiment-engine job)
gets a **trace id** — ``rtx-`` + 16 hex chars, derived from a seeded
SHA-256 counter so a replayed run mints the identical sequence.  The
id travels through the process on a :mod:`contextvars` variable (so
the engine can tag a :class:`~repro.experiments.engine.JobResult`
without threading an argument through every call) and across the
fabric's worker result pipe as a plain field on the task tuple.

Completed requests land in :data:`TRACES`, a bounded thread-safe
store of **waterfalls**: ordered stages (``queue_wait`` →
``trace_expand`` → ``sim`` → …) with millisecond offsets and
durations that sum to the request's end-to-end latency (a synthetic
``unattributed`` stage absorbs scheduling slop, so the sum is honest
rather than cherry-picked).  The serve daemon's ``/trace/<id>``
endpoint and ``repro trace show`` render these.

Determinism contract: trace ids and waterfalls are *diagnostics*.
They live only here and in the structured log ring — never in the
byte-identical ``--metrics``/``--trace``/figure exports, which the
leak tests grep for the ``rtx-`` prefix to prove.
"""

from __future__ import annotations

import contextlib
import hashlib
import itertools
import os
import threading
import time
from collections import OrderedDict
from contextvars import ContextVar
from typing import Dict, Iterable, List, Mapping, Optional

#: Schema tag of one stored trace document.
TRACE_SCHEMA = "repro.telemetry.tracectx/v1"

#: Greppable prefix of every trace id.  Distinctive on purpose: the
#: leak tests (and CI) prove the deterministic exports never contain
#: ``rtx-[0-9a-f]{16}``.
TRACE_ID_PREFIX = "rtx"

#: Environment variable seeding the id sequence (default 0); same
#: seed → same ids, so a replayed load test names identical traces.
TRACE_SEED_ENV = "REPRO_TRACE_SEED"

#: Completed traces kept per store (oldest evicted first).
DEFAULT_TRACE_CAPACITY = 512

#: Canonical stage order for waterfall rendering; unknown stages sort
#: after these, in recording order.
STAGE_ORDER = (
    "admission",
    "queue_wait",
    "coalesce_wait",
    "batch_assembly",
    "memory_lookup",
    "disk_lookup",
    "trace_expand",
    "compile",
    "sim",
    "cache_publish",
    "serialize",
    "unattributed",
)

_current_trace: ContextVar[Optional[str]] = ContextVar(
    "repro_trace_id", default=None
)

_id_lock = threading.Lock()
_id_counter = itertools.count()
_id_seed: Optional[str] = None


def _seed() -> str:
    global _id_seed
    if _id_seed is None:
        _id_seed = os.environ.get(TRACE_SEED_ENV, "").strip() or "0"
    return _id_seed


def new_trace_id() -> str:
    """Mint the next trace id: ``rtx-`` + 16 hex chars.

    Deterministic in (:data:`TRACE_SEED_ENV`, mint order) and unique
    per process; thread-safe.
    """
    with _id_lock:
        n = next(_id_counter)
    digest = hashlib.sha256(f"{_seed()}:{n}".encode("ascii")).hexdigest()
    return f"{TRACE_ID_PREFIX}-{digest[:16]}"


def reset_trace_ids() -> None:
    """Restart the id sequence (tests; re-reads the seed env)."""
    global _id_counter, _id_seed
    with _id_lock:
        _id_counter = itertools.count()
        _id_seed = None


def current_trace_id() -> Optional[str]:
    """The trace id bound to the current context, or None."""
    return _current_trace.get()


@contextlib.contextmanager
def bind_trace(trace_id: Optional[str]):
    """Bind *trace_id* as the current context's trace id."""
    token = _current_trace.set(trace_id)
    try:
        yield trace_id
    finally:
        _current_trace.reset(token)


class TraceStore:
    """Bounded, thread-safe store of completed request waterfalls.

    One record per trace id::

        {"schema": TRACE_SCHEMA, "trace_id": "rtx-…",
         "started_unix": 1699…, "attrs": {…}, "complete": True,
         "total_ms": 12.4,
         "stages": [{"stage": "queue_wait", "offset_ms": 0.01,
                     "duration_ms": 1.2}, …]}

    Stages are laid out sequentially unless an explicit offset is
    given, so a Gantt needs no reconstruction.  Wall-clock timestamps
    are safe here: the store is diagnostics-only, never exported
    deterministically.
    """

    def __init__(self, capacity: int = DEFAULT_TRACE_CAPACITY) -> None:
        self.capacity = max(1, capacity)
        self._lock = threading.Lock()
        self._traces: "OrderedDict[str, Dict[str, object]]" = OrderedDict()

    # ------------------------------------------------------------------

    def begin(self, trace_id: str, **attrs: object) -> None:
        """Open a trace (idempotent; re-begin refreshes attrs)."""
        with self._lock:
            record = self._traces.get(trace_id)
            if record is None:
                record = {
                    "schema": TRACE_SCHEMA,
                    "trace_id": trace_id,
                    "started_unix": round(time.time(), 3),
                    "attrs": {},
                    "stages": [],
                    "total_ms": None,
                    "complete": False,
                }
                self._traces[trace_id] = record
                while len(self._traces) > self.capacity:
                    self._traces.popitem(last=False)
            record["attrs"].update(
                {k: v for k, v in attrs.items() if v is not None}
            )

    def annotate(self, trace_id: str, **attrs: object) -> None:
        """Attach key/value attributes to an open trace."""
        with self._lock:
            record = self._traces.get(trace_id)
            if record is not None:
                record["attrs"].update(
                    {k: v for k, v in attrs.items() if v is not None}
                )

    def stage(
        self,
        trace_id: str,
        name: str,
        duration_seconds: float,
        *,
        offset_seconds: Optional[float] = None,
    ) -> None:
        """Append one stage.  Without *offset_seconds* the stage is
        laid after the previous one (sequential waterfall)."""
        with self._lock:
            record = self._traces.get(trace_id)
            if record is None:
                return
            stages: List[Dict[str, object]] = record["stages"]
            if offset_seconds is None:
                if stages:
                    last = stages[-1]
                    offset_ms = float(last["offset_ms"]) + float(
                        last["duration_ms"]
                    )
                else:
                    offset_ms = 0.0
            else:
                offset_ms = offset_seconds * 1000.0
            stages.append(
                {
                    "stage": name,
                    "offset_ms": round(offset_ms, 4),
                    "duration_ms": round(
                        max(0.0, duration_seconds) * 1000.0, 4
                    ),
                }
            )

    def finish(
        self, trace_id: str, total_seconds: Optional[float] = None
    ) -> None:
        """Close a trace.  With *total_seconds*, any gap between the
        recorded stages and the end-to-end total becomes a synthetic
        ``unattributed`` stage, so the waterfall always sums to the
        measured latency."""
        with self._lock:
            record = self._traces.get(trace_id)
            if record is None:
                return
            stages: List[Dict[str, object]] = record["stages"]
            attributed = sum(float(s["duration_ms"]) for s in stages)
            if total_seconds is None:
                total_ms = attributed
            else:
                total_ms = max(0.0, total_seconds * 1000.0)
                gap = total_ms - attributed
                if gap > 0.0005:
                    offset = (
                        float(stages[-1]["offset_ms"])
                        + float(stages[-1]["duration_ms"])
                        if stages
                        else 0.0
                    )
                    stages.append(
                        {
                            "stage": "unattributed",
                            "offset_ms": round(offset, 4),
                            "duration_ms": round(gap, 4),
                        }
                    )
            record["total_ms"] = round(total_ms, 4)
            record["complete"] = True
            self._traces.move_to_end(trace_id)

    def record(
        self,
        trace_id: str,
        *,
        attrs: Optional[Mapping[str, object]] = None,
        stages: Iterable[tuple] = (),
        total_seconds: Optional[float] = None,
    ) -> None:
        """Store one completed trace in a single lock acquisition.

        Equivalent to ``begin`` + ``stage``\\ * + ``finish`` (stages
        laid sequentially, the gap to *total_seconds* backed into
        ``unattributed``), but shaped for the serving hot path, where
        four-plus lock round-trips per request are measurable against
        a sub-millisecond cache hit.  *stages* is an iterable of
        ``(name, duration_seconds)`` pairs.
        """
        stage_list: List[Dict[str, object]] = []
        offset_ms = 0.0
        for name, duration_seconds in stages:
            duration_ms = round(max(0.0, duration_seconds) * 1000.0, 4)
            stage_list.append(
                {
                    "stage": name,
                    "offset_ms": round(offset_ms, 4),
                    "duration_ms": duration_ms,
                }
            )
            offset_ms += duration_ms
        if total_seconds is None:
            total_ms = offset_ms
        else:
            total_ms = max(0.0, total_seconds * 1000.0)
            gap = total_ms - offset_ms
            if gap > 0.0005:
                stage_list.append(
                    {
                        "stage": "unattributed",
                        "offset_ms": round(offset_ms, 4),
                        "duration_ms": round(gap, 4),
                    }
                )
        document: Dict[str, object] = {
            "schema": TRACE_SCHEMA,
            "trace_id": trace_id,
            "started_unix": round(time.time(), 3),
            "attrs": {
                k: v
                for k, v in dict(attrs or {}).items()
                if v is not None
            },
            "stages": stage_list,
            "total_ms": round(total_ms, 4),
            "complete": True,
        }
        with self._lock:
            self._traces[trace_id] = document
            self._traces.move_to_end(trace_id)
            while len(self._traces) > self.capacity:
                self._traces.popitem(last=False)

    # ------------------------------------------------------------------

    def get(self, trace_id: str) -> Optional[Dict[str, object]]:
        """Deep-enough copy of one trace document, or None."""
        with self._lock:
            record = self._traces.get(trace_id)
            if record is None:
                return None
            return _copy_trace(record)

    def recent(self, limit: int = 32) -> List[Dict[str, object]]:
        """Most recent traces, newest first."""
        with self._lock:
            records = list(self._traces.values())
        out = [_copy_trace(r) for r in reversed(records[-max(0, limit):])]
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()


def _copy_trace(record: Mapping[str, object]) -> Dict[str, object]:
    out = dict(record)
    out["attrs"] = dict(record["attrs"])  # type: ignore[index]
    out["stages"] = [dict(s) for s in record["stages"]]  # type: ignore[index]
    return out


def record_job_trace(
    trace_id: str,
    *,
    phases: Mapping[str, float],
    attrs: Optional[Mapping[str, object]] = None,
    store: Optional["TraceStore"] = None,
) -> None:
    """Fold one engine job's phase attribution into a waterfall.

    Stages follow :data:`STAGE_ORDER` (``trace_expand`` → ``compile``
    → ``sim``), laid sequentially; the total is the phase sum — the
    honest end-to-end figure the engine measured where the job ran.
    """
    target = store if store is not None else TRACES
    rank = {name: i for i, name in enumerate(STAGE_ORDER)}
    ordered = sorted(
        phases, key=lambda n: (rank.get(n, len(rank)), n)
    )
    target.record(
        trace_id,
        attrs=attrs,
        stages=[(name, float(phases[name])) for name in ordered],
    )


#: Process-global trace store (diagnostics only; never exported).
TRACES = TraceStore()


__all__ = [
    "TRACE_SCHEMA",
    "TRACE_ID_PREFIX",
    "TRACE_SEED_ENV",
    "DEFAULT_TRACE_CAPACITY",
    "STAGE_ORDER",
    "TraceStore",
    "TRACES",
    "bind_trace",
    "current_trace_id",
    "new_trace_id",
    "record_job_trace",
    "reset_trace_ids",
]
