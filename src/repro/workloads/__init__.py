"""Benchmark workloads: profiles and synthetic trace generation."""

from .profiles import (
    PROFILES,
    SUITES,
    BenchmarkProfile,
    all_benchmarks,
    profile,
)
from .synthetic import synthesize_trace
from .trace_cache import (
    TRACE_CACHE,
    TraceCache,
    TraceCacheStats,
    cached_trace,
    configure_trace_cache,
    profile_fingerprint,
    trace_key,
)

__all__ = [
    "PROFILES",
    "SUITES",
    "BenchmarkProfile",
    "all_benchmarks",
    "profile",
    "synthesize_trace",
    "TRACE_CACHE",
    "TraceCache",
    "TraceCacheStats",
    "cached_trace",
    "configure_trace_cache",
    "profile_fingerprint",
    "trace_key",
]
