"""Benchmark workloads: profiles and synthetic trace generation."""

from .profiles import (
    PROFILES,
    SUITES,
    BenchmarkProfile,
    all_benchmarks,
    profile,
)
from .synthetic import synthesize_trace

__all__ = [
    "PROFILES",
    "SUITES",
    "BenchmarkProfile",
    "all_benchmarks",
    "profile",
    "synthesize_trace",
]
