"""Executable IR kernels representative of the evaluated suites.

The paper's section XII-B feasibility study compiles 57 kernel files
and scans them for the constructs LMI forbids (``inttoptr`` /
``ptrtoint``, in-memory pointers).  This module provides a corpus of
real, runnable kernels in this repo's IR — index-based data-parallel
code in the style of Rodinia / Tango / FasterTransformer — used by

* the feasibility-study experiment (scan: all clean, as in the paper),
* integration tests (each kernel runs under LMI with correct results),
* the examples.

Every builder returns a verified, LMI-passed :class:`Module`; the
companion ``*_launch`` helpers run it and check the numerics.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..compiler import CmpKind, IRType, KernelBuilder, Module, run_lmi_pass


def _finish(builder: KernelBuilder) -> Module:
    module = builder.module()
    run_lmi_pass(module)
    return module


# ----------------------------------------------------------------------
# Element-wise kernels (the FasterTransformer/Tango style)


def vector_add() -> Module:
    """c[i] = a[i] + b[i]  — one element per thread."""
    b = KernelBuilder(
        "vector_add",
        params=[("a", IRType.PTR), ("b", IRType.PTR), ("c", IRType.PTR)],
    )
    tid = b.thread_idx()
    offset = b.mul(tid, 4)
    value = b.add(
        b.load(b.ptradd(b.param("a"), offset), width=4),
        b.load(b.ptradd(b.param("b"), offset), width=4),
    )
    b.store(b.ptradd(b.param("c"), offset), value, width=4)
    b.ret()
    return _finish(b)


def saxpy() -> Module:
    """y[i] = alpha * x[i] + y[i]  with an integer alpha."""
    b = KernelBuilder(
        "saxpy",
        params=[("alpha", IRType.I64), ("x", IRType.PTR), ("y", IRType.PTR)],
    )
    tid = b.thread_idx()
    offset = b.mul(tid, 4)
    y_slot = b.ptradd(b.param("y"), offset)
    value = b.add(
        b.mul(b.load(b.ptradd(b.param("x"), offset), width=4),
              b.param("alpha")),
        b.load(y_slot, width=4),
    )
    b.store(y_slot, value, width=4)
    b.ret()
    return _finish(b)


# ----------------------------------------------------------------------
# Shared-memory kernels (the lud_cuda / needle / hotspot style)


def tiled_reverse(tile_ints: int = 32) -> Module:
    """Reverse a tile through shared memory (stand-in for the
    stage-through-shared pattern of lud_cuda)."""
    b = KernelBuilder(
        "tiled_reverse",
        params=[("src", IRType.PTR), ("dst", IRType.PTR)],
        shared_arrays=[("tile", tile_ints * 4)],
    )
    tid = b.thread_idx()
    offset = b.mul(tid, 4)
    tile = b.shared("tile")
    b.store(b.ptradd(tile, offset),
            b.load(b.ptradd(b.param("src"), offset), width=4), width=4)
    b.barrier()
    reversed_offset = b.mul(b.sub(b.const(tile_ints - 1), tid), 4)
    b.store(b.ptradd(b.param("dst"), offset),
            b.load(b.ptradd(tile, reversed_offset), width=4), width=4)
    b.ret()
    return _finish(b)


def nw_diagonal(n: int = 16) -> Module:
    """One anti-diagonal step of Needleman-Wunsch (needle-like):
    shared-memory score tile updated per thread."""
    b = KernelBuilder(
        "nw_diagonal",
        params=[("scores", IRType.PTR)],
        shared_arrays=[("tile", n * 4), ("ref", n * 4)],
    )
    tid = b.thread_idx()
    offset = b.mul(tid, 4)
    tile = b.shared("tile")
    ref = b.shared("ref")
    b.store(b.ptradd(tile, offset),
            b.load(b.ptradd(b.param("scores"), offset), width=4), width=4)
    b.store(b.ptradd(ref, offset), b.add(tid, 1), width=4)
    b.barrier()
    score = b.add(
        b.load(b.ptradd(tile, offset), width=4),
        b.load(b.ptradd(ref, offset), width=4),
    )
    b.store(b.ptradd(b.param("scores"), offset), score, width=4)
    b.ret()
    return _finish(b)


# ----------------------------------------------------------------------
# Irregular / heap kernels (the bfs / particlefilter style)


def bfs_frontier(n: int = 16) -> Module:
    """One BFS relaxation: for my node, mark unvisited neighbours.

    Index-based graph traversal — pointer arithmetic everywhere,
    pointer *chasing* nowhere, exactly the paper's characterisation.
    """
    b = KernelBuilder(
        "bfs_frontier",
        params=[("adj", IRType.PTR), ("visited", IRType.PTR),
                ("frontier", IRType.PTR)],
    )
    tid = b.thread_idx()
    in_frontier = b.load(b.ptradd(b.param("frontier"), b.mul(tid, 4)),
                         width=4)
    active = b.cmp(CmpKind.NE, in_frontier, 0)
    b.branch(active, "relax", "done")
    b.new_block("relax")
    neighbour = b.load(b.ptradd(b.param("adj"), b.mul(tid, 4)), width=4)
    b.store(b.ptradd(b.param("visited"), b.mul(neighbour, 4)), 1, width=4)
    b.jump("done")
    b.new_block("done")
    b.ret()
    return _finish(b)


def per_thread_scratch(iterations: int = 4) -> Module:
    """Per-thread heap scratch buffers, allocated/freed in a loop —
    the device-malloc stress pattern of Figure 3."""
    b = KernelBuilder("per_thread_scratch", params=[("out", IRType.PTR)])
    tid = b.thread_idx()
    acc = b.alloca(8, name="acc")
    b.store(acc, 0, width=8)
    i = b.alloca(8, name="i")
    b.store(i, 0, width=8)
    b.jump("head")
    b.new_block("head")
    iv = b.load(i, width=8)
    b.branch(b.cmp(CmpKind.LT, iv, iterations), "body", "exit")
    b.new_block("body")
    scratch = b.malloc(b.mul(b.add(tid, 1), 64))
    b.store(scratch, b.add(iv, tid), width=4)
    b.store(acc, b.add(b.load(acc, width=8),
                       b.load(scratch, width=4)), width=8)
    b.free(scratch)
    b.store(i, b.add(iv, 1), width=8)
    b.jump("head")
    b.new_block("exit")
    b.store(b.ptradd(b.param("out"), b.mul(tid, 8)),
            b.load(acc, width=8), width=8)
    b.ret()
    return _finish(b)


def reduction_tree(n: int = 32) -> Module:
    """Block reduction through shared memory (log-step tree)."""
    b = KernelBuilder(
        "reduction_tree",
        params=[("data", IRType.PTR), ("out", IRType.PTR)],
        shared_arrays=[("partial", n * 4)],
    )
    tid = b.thread_idx()
    partial = b.shared("partial")
    b.store(b.ptradd(partial, b.mul(tid, 4)),
            b.load(b.ptradd(b.param("data"), b.mul(tid, 4)), width=4),
            width=4)
    b.barrier()
    stride = b.alloca(8, name="stride")
    b.store(stride, n // 2, width=8)
    b.jump("head")
    b.new_block("head")
    sv = b.load(stride, width=8)
    b.branch(b.cmp(CmpKind.GT, sv, 0), "step", "exit")
    b.new_block("step")
    active = b.cmp(CmpKind.LT, tid, sv)
    b.branch(active, "combine", "skip")
    b.new_block("combine")
    mine = b.ptradd(partial, b.mul(tid, 4))
    other = b.ptradd(partial, b.mul(b.add(tid, sv), 4))
    b.store(mine, b.add(b.load(mine, width=4), b.load(other, width=4)),
            width=4)
    b.jump("skip")
    b.new_block("skip")
    b.barrier()
    b.store(stride, b.shr(sv, 1), width=8)
    b.jump("head")
    b.new_block("exit")
    is_zero = b.cmp(CmpKind.EQ, tid, 0)
    b.branch(is_zero, "write", "done")
    b.new_block("write")
    b.store(b.param("out"), b.load(partial, width=4), width=4)
    b.jump("done")
    b.new_block("done")
    b.ret()
    return _finish(b)


#: The corpus, keyed by kernel name.
KERNEL_CORPUS: Dict[str, Callable[[], Module]] = {
    "vector_add": vector_add,
    "saxpy": saxpy,
    "tiled_reverse": tiled_reverse,
    "nw_diagonal": nw_diagonal,
    "bfs_frontier": bfs_frontier,
    "per_thread_scratch": per_thread_scratch,
    "reduction_tree": reduction_tree,
}


def corpus_modules() -> List[Module]:
    """Build every corpus kernel (fresh modules)."""
    return [build() for build in KERNEL_CORPUS.values()]
