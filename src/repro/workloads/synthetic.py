"""Deterministic synthetic trace generation from benchmark profiles.

Produces :class:`~repro.sim.trace.KernelTrace` objects whose dynamic
statistics match the profile: instruction mix, memory-region ratios,
pointer-arithmetic density, dependency density, coalescing behaviour,
buffer locality, and working-set footprint.  The generator is seeded
by the benchmark name, so every run (and every mechanism compared on
the same benchmark) sees the identical instruction stream.
"""

from __future__ import annotations

import random
import zlib
from typing import List, Optional

from ..memory import layout
from ..sim.trace import KernelTrace, OpClass, TraceInstruction
from .profiles import BenchmarkProfile, profile

#: Cache-line size used for transaction addresses.
_LINE = 128


def _seed_for(name: str, salt: int = 0) -> int:
    # crc32, not hash(): string hashing is salted per process and
    # would break cross-run determinism.
    return (zlib.crc32(name.encode()) ^ (salt * 0x9E3779B9)) & 0x7FFFFFFF


class _AddressGenerator:
    """Per-warp address streams honouring locality and coalescing."""

    def __init__(self, spec: BenchmarkProfile, warp: int, rng: random.Random):
        self.spec = spec
        self.rng = rng
        self.lines_in_set = max(1, (spec.working_set_kb * 1024) // _LINE)
        # Each warp streams through its own slice of the working set.
        self.cursor = (warp * 7919) % self.lines_in_set
        self.current_buffer = rng.randrange(spec.n_buffers)

    def _base(self, op: OpClass) -> int:
        space = op.space
        if space is None:
            return layout.GLOBAL_BASE
        return layout.region_base(space)

    def next_access(self, op: OpClass):
        """(lines, buffer_ids) for one memory instruction."""
        spec = self.spec
        base = self._base(op)
        if self.rng.random() < spec.coalesced:
            self.cursor = (self.cursor + 1) % self.lines_in_set
            lines = (base + self.cursor * _LINE,)
        else:
            lines = tuple(
                base + self.rng.randrange(self.lines_in_set) * _LINE
                for _ in range(spec.uncoalesced_transactions)
            )
        if spec.buffer_locality == "scatter":
            # Scattered lanes land in different buffers: one bounds
            # lookup per transaction.
            buffer_ids = tuple(
                self.rng.randrange(spec.n_buffers) for _ in lines
            )
        else:
            # Streaming: stay on a buffer for a while, then move on.
            if self.rng.random() < 0.02:
                self.current_buffer = self.rng.randrange(spec.n_buffers)
            buffer_ids = (self.current_buffer,)
        return lines, buffer_ids


def synthesize_trace(
    benchmark: str,
    *,
    warps: int = 8,
    instructions_per_warp: int = 2000,
    seed_salt: int = 0,
    spec: Optional[BenchmarkProfile] = None,
) -> KernelTrace:
    """Generate the kernel trace for *benchmark*."""
    spec = spec if spec is not None else profile(benchmark)
    streams: List[List[TraceInstruction]] = []
    for warp in range(warps):
        rng = random.Random(_seed_for(spec.name, warp + seed_salt * 1000 + 1))
        addressing = _AddressGenerator(spec, warp, rng)
        stream: List[TraceInstruction] = []
        for _ in range(instructions_per_warp):
            stream.append(_draw_instruction(spec, rng, addressing))
        streams.append(stream)
    return KernelTrace(name=spec.name, warps=streams)


def _draw_instruction(
    spec: BenchmarkProfile, rng: random.Random, addressing: _AddressGenerator
) -> TraceInstruction:
    depends = rng.random() < spec.dep_rate
    if rng.random() < spec.mem_fraction:
        region = rng.random()
        is_load = rng.random() < 0.7  # typical load:store ratio
        if region < spec.global_frac:
            op = OpClass.LDG if is_load else OpClass.STG
        elif region < spec.global_frac + spec.shared_frac:
            op = OpClass.LDS if is_load else OpClass.STS
        else:
            op = OpClass.LDL if is_load else OpClass.STL
        lines, buffer_ids = addressing.next_access(op)
        return TraceInstruction(
            op=op, depends=depends, lines=lines, buffer_ids=buffer_ids
        )
    if rng.random() < spec.int_fraction:
        checked = rng.random() < spec.ptr_rate
        return TraceInstruction(op=OpClass.INT, depends=depends, checked=checked)
    return TraceInstruction(op=OpClass.FP, depends=depends)
