"""Content-addressed kernel-trace cache.

Synthesizing a benchmark trace is deterministic — the generator is
seeded from the benchmark name — yet the paper artefacts re-ran it for
every (experiment × mechanism × process) combination.  This module
memoises :func:`~repro.workloads.synthetic.synthesize_trace` behind a
content-addressed key so identical requests pay synthesis once:

* **key** — SHA-256 over ``(profile name, warps, instructions/warp,
  seed salt, profile fingerprint)``.  The fingerprint digests every
  :class:`~repro.workloads.profiles.BenchmarkProfile` field, so
  editing a profile (or passing a custom ``spec``) can never serve a
  stale trace.
* **L1: in-process LRU** — an ``OrderedDict`` bounded by ``capacity``
  entries.  Hits return the *same* trace object, which also shares the
  simulator's per-trace expansion memo across mechanisms.
* **L2: optional on-disk columnar layer** — enabled by the
  ``REPRO_TRACE_CACHE`` environment variable or the experiments CLI's
  ``--trace-cache DIR`` flag.  Entries are versioned columnar ``.npz``
  containers (:func:`~repro.sim.tracefile.dump_trace_npz`), written
  atomically (temp + ``os.replace``) so concurrent engine workers can
  share one directory; unreadable/corrupt entries fall back to
  synthesis.  Legacy ``trace-{key}.pkl`` pickles from older runs are
  still honoured (with a :class:`DeprecationWarning`) and rewritten as
  ``.npz`` on the next store.

Traces are treated as immutable once synthesized (instructions are
frozen dataclasses and the simulator never mutates streams), which is
what makes sharing one object between simulators safe.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
import warnings
from collections import OrderedDict
from dataclasses import dataclass, fields
from typing import Optional

from ..sim.trace import KernelTrace
from ..sim.tracefile import dump_trace_npz, load_trace_npz
from .profiles import BenchmarkProfile, profile
from .synthetic import synthesize_trace


def profile_fingerprint(spec: BenchmarkProfile) -> str:
    """Stable digest of every profile field (hex SHA-256)."""
    rendered = ";".join(
        f"{field.name}={getattr(spec, field.name)!r}"
        for field in fields(spec)
    )
    return hashlib.sha256(rendered.encode("utf-8")).hexdigest()


def trace_key(
    spec: BenchmarkProfile,
    *,
    warps: int,
    instructions_per_warp: int,
    seed_salt: int = 0,
) -> str:
    """Content address of one synthesis request (hex SHA-256)."""
    raw = (
        f"{spec.name}|warps={warps}|instructions={instructions_per_warp}"
        f"|salt={seed_salt}|profile={profile_fingerprint(spec)}"
    )
    return hashlib.sha256(raw.encode("utf-8")).hexdigest()


def request_key(
    benchmark: str,
    warps: int,
    instructions_per_warp: int,
    seed_salt: int = 0,
) -> str:
    """Content address of an engine-shaped request (hex SHA-256).

    Convenience over :func:`trace_key` for callers that hold the
    engine's ``(benchmark, warps, instructions, salt)`` tuple rather
    than a profile object — the experiment fabric digests grid cells
    through this, so a cell digest tracks profile edits exactly the
    way the trace cache itself does.
    """
    return trace_key(
        profile(benchmark),
        warps=warps,
        instructions_per_warp=instructions_per_warp,
        seed_salt=seed_salt,
    )


@dataclass
class TraceCacheStats:
    """Hit/miss counters for both cache layers."""

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    disk_writes: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total ``get_or_synthesize`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """In-process hit fraction (0 when never used)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups


class TraceCache:
    """Two-layer (memory LRU + optional disk) trace cache.

    Thread-safe, with per-key synthesis locking: the LRU map and the
    counters sit behind one short-held lock, while disk loads and
    synthesis run under a *per-key* lock.  Two threads requesting the
    same missing trace serialize (the loser finds the winner's entry
    and counts a hit); threads requesting *different* missing traces
    synthesize concurrently — the shape the ``repro.serve`` daemon's
    executor threads need, and what the 16-thread hammer test in
    ``tests/test_trace_cache.py`` locks.
    """

    def __init__(
        self, capacity: int = 64, disk_dir: Optional[str] = None
    ) -> None:
        if capacity <= 0:
            raise ValueError("trace cache capacity must be positive")
        self.capacity = capacity
        self.disk_dir = disk_dir
        self.stats = TraceCacheStats()
        self._entries: "OrderedDict[str, KernelTrace]" = OrderedDict()
        self._lock = threading.Lock()
        #: key -> in-flight synthesis lock; entries live only while a
        #: miss is being filled (the filler drops its key on publish).
        self._key_locks: dict = {}

    # ------------------------------------------------------------------

    def configure(
        self,
        *,
        capacity: Optional[int] = None,
        disk_dir: Optional[str] = None,
        clear: bool = False,
    ) -> "TraceCache":
        """Adjust capacity / disk layer; optionally drop all entries."""
        with self._lock:
            if capacity is not None:
                if capacity <= 0:
                    raise ValueError("trace cache capacity must be positive")
                self.capacity = capacity
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self.stats.evictions += 1
            if disk_dir is not None:
                self.disk_dir = disk_dir or None
            if clear:
                self._entries.clear()
                self.stats = TraceCacheStats()
        return self

    def clear(self) -> None:
        """Drop every in-memory entry and zero the counters."""
        self.configure(clear=True)

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------

    def _disk_path(self, key: str) -> Optional[str]:
        if not self.disk_dir:
            return None
        return os.path.join(self.disk_dir, f"trace-{key}.npz")

    def _legacy_path(self, key: str) -> Optional[str]:
        if not self.disk_dir:
            return None
        return os.path.join(self.disk_dir, f"trace-{key}.pkl")

    def _disk_load(self, key: str) -> Optional[KernelTrace]:
        path = self._disk_path(key)
        if path is None:
            return None
        if os.path.exists(path):
            try:
                # Loading an .npz pre-seeds the trace's columnar memo,
                # so the simulator's plan decode starts from the same
                # arrays that crossed the process boundary.
                return load_trace_npz(path)
            except Exception:
                return None  # corrupt/foreign entry: fall back
        legacy = self._legacy_path(key)
        if legacy is None or not os.path.exists(legacy):
            return None
        try:
            with open(legacy, "rb") as handle:
                trace = pickle.load(handle)
        except Exception:
            return None
        if not isinstance(trace, KernelTrace):
            return None
        warnings.warn(
            "loaded legacy pickle trace-cache entry; the pickle layer "
            "is deprecated — entries are rewritten as columnar .npz",
            DeprecationWarning,
            stacklevel=3,
        )
        self._disk_store(key, trace)  # upgrade in place
        return trace

    def _disk_store(self, key: str, trace: KernelTrace) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        try:
            os.makedirs(self.disk_dir, exist_ok=True)
            # Thread id in the tmp name: two threads of one process may
            # race the same key's disk write (best-effort layer).
            tmp = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
            with open(tmp, "wb") as handle:
                dump_trace_npz(trace, handle)
            os.replace(tmp, path)  # atomic under concurrent workers
            with self._lock:
                self.stats.disk_writes += 1
        except OSError:
            pass  # disk layer is best-effort

    def _remember(self, key: str, trace: KernelTrace) -> None:
        self._entries[key] = trace
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    # ------------------------------------------------------------------

    def get_or_synthesize(
        self,
        benchmark: str,
        *,
        warps: int = 8,
        instructions_per_warp: int = 2000,
        seed_salt: int = 0,
        spec: Optional[BenchmarkProfile] = None,
    ) -> KernelTrace:
        """The trace for this request, synthesizing at most once."""
        spec = spec if spec is not None else profile(benchmark)
        key = trace_key(
            spec,
            warps=warps,
            instructions_per_warp=instructions_per_warp,
            seed_salt=seed_salt,
        )
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return cached
            key_lock = self._key_locks.get(key)
            if key_lock is None:
                key_lock = self._key_locks[key] = threading.Lock()
        # Fill the miss under the per-key lock only: a concurrent
        # request for the same key waits here (and then reads the
        # winner's entry), while requests for other keys synthesize in
        # parallel.
        with key_lock:
            with self._lock:
                cached = self._entries.get(key)
                if cached is not None:
                    self._entries.move_to_end(key)
                    self.stats.hits += 1
                    return cached
                self.stats.misses += 1
            trace = self._disk_load(key)
            disk_hit = trace is not None
            if trace is None:
                trace = synthesize_trace(
                    benchmark,
                    warps=warps,
                    instructions_per_warp=instructions_per_warp,
                    seed_salt=seed_salt,
                    spec=spec,
                )
                self._disk_store(key, trace)
            with self._lock:
                if disk_hit:
                    self.stats.disk_hits += 1
                self._remember(key, trace)
                # Waiters still holding this lock object re-check the
                # entry map first, so dropping the key here is safe —
                # it just keeps the lock table from outliving misses.
                self._key_locks.pop(key, None)
            return trace

    def get_or_synthesize_many(self, requests) -> list:
        """Traces for a whole batch of requests, deduping in-batch.

        *requests* is a sequence of ``(benchmark, warps,
        instructions_per_warp, seed_salt)`` tuples — the experiment
        engine's job shape.  Duplicates within the batch resolve to
        the *same* trace object through one cache lookup, so a batched
        engine group running four mechanisms of one benchmark pays a
        single lock acquisition (and at most a single synthesis)
        instead of four.  Returns one trace per request, in order.
        """
        memo: dict = {}
        out = []
        for request in requests:
            trace = memo.get(request)
            if trace is None:
                benchmark, warps, instructions_per_warp, seed_salt = request
                trace = self.get_or_synthesize(
                    benchmark,
                    warps=warps,
                    instructions_per_warp=instructions_per_warp,
                    seed_salt=seed_salt,
                )
                memo[request] = trace
            out.append(trace)
        return out


#: Process-global cache; the disk layer follows ``REPRO_TRACE_CACHE``.
TRACE_CACHE = TraceCache(disk_dir=os.environ.get("REPRO_TRACE_CACHE") or None)


def cached_trace(
    benchmark: str,
    *,
    warps: int = 8,
    instructions_per_warp: int = 2000,
    seed_salt: int = 0,
    spec: Optional[BenchmarkProfile] = None,
) -> KernelTrace:
    """Drop-in cached façade over ``synthesize_trace``."""
    return TRACE_CACHE.get_or_synthesize(
        benchmark,
        warps=warps,
        instructions_per_warp=instructions_per_warp,
        seed_salt=seed_salt,
        spec=spec,
    )


def configure_trace_cache(
    *,
    capacity: Optional[int] = None,
    disk_dir: Optional[str] = None,
    clear: bool = False,
) -> TraceCache:
    """Configure the process-global cache; returns it."""
    return TRACE_CACHE.configure(
        capacity=capacity, disk_dir=disk_dir, clear=clear
    )


__all__ = [
    "TraceCache",
    "TraceCacheStats",
    "TRACE_CACHE",
    "cached_trace",
    "configure_trace_cache",
    "profile_fingerprint",
    "request_key",
    "trace_key",
]
