"""Model-based stateful testing of the buddy allocator.

Hypothesis drives random alloc/free sequences against
:class:`AlignedAllocator` while a trivial Python model tracks what
should be live; after every step the allocator's structural invariants
must hold and its view must agree with the model.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

import pytest

from repro.allocator import AlignedAllocator
from repro.common.bitops import is_aligned, next_power_of_two
from repro.common.errors import (
    AllocationError,
    DoubleFreeError,
    InvalidFreeError,
)

REGION = 0x4000_0000
SPAN = 1 << 20  # 1 MiB keeps exhaustion reachable


class BuddyMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.allocator = AlignedAllocator(REGION, SPAN)
        self.model = {}  # base -> (requested, rounded)
        self.freed_once = set()

    @rule(size=st.integers(min_value=0, max_value=1 << 18))
    def alloc(self, size):
        try:
            block = self.allocator.alloc(size)
        except AllocationError:
            # Only acceptable when no free block of sufficient order
            # exists (external fragmentation can cause this even with
            # enough total free bytes — that is buddy behaviour).
            need = max(next_power_of_two(max(size, 1)), 256)
            available_orders = [
                order
                for order, offsets in self.allocator._free.items()
                if offsets
            ]
            assert all((1 << order) < need for order in available_orders)
            return
        assert block.base not in self.model
        assert block.rounded == max(next_power_of_two(max(size, 1)), 256)
        assert is_aligned(block.base, block.rounded)
        self.model[block.base] = (size, block.rounded)
        self.freed_once.discard(block.base)

    @precondition(lambda self: self.model)
    @rule(index=st.integers(min_value=0, max_value=10 ** 9))
    def free_live(self, index):
        base = sorted(self.model)[index % len(self.model)]
        block = self.allocator.free(base)
        assert block.rounded == self.model[base][1]
        del self.model[base]
        self.freed_once.add(base)

    @precondition(lambda self: self.freed_once)
    @rule()
    def double_free_is_caught(self):
        base = next(iter(self.freed_once))
        if base in self.model:
            return  # slot was re-allocated; freeing it again is legal
        with pytest.raises(DoubleFreeError):
            self.allocator.free(base)

    @rule(offset=st.integers(min_value=1, max_value=255))
    def interior_free_is_caught(self, offset):
        if not self.model:
            return
        base = next(iter(self.model))
        with pytest.raises((InvalidFreeError, DoubleFreeError)):
            self.allocator.free(base + offset)

    @invariant()
    def structural_invariants_hold(self):
        self.allocator.check_invariants()

    @invariant()
    def live_views_agree(self):
        allocator_live = {b.base for b in self.allocator.live_blocks}
        assert allocator_live == set(self.model)

    @invariant()
    def accounting_matches_model(self):
        expected = sum(rounded for _, rounded in self.model.values())
        assert self.allocator.live_bytes == expected


BuddyMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)
TestBuddyStateful = BuddyMachine.TestCase
