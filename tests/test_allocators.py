"""Tests for all allocators (paper sections IV-E, V-B, Figures 4-5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allocator import (
    AlignedAllocator,
    BaselineAllocator,
    DeviceHeapAllocator,
    FootprintMeter,
    SharedAllocator,
    StackAllocator,
    relative_overhead,
)
from repro.common.bitops import is_aligned
from repro.common.errors import (
    AllocationError,
    ConfigurationError,
    DoubleFreeError,
    InvalidFreeError,
)

REGION = 0x1000_0000
SPAN = 1 << 24  # 16 MiB


class TestAlignedAllocator:
    def test_rounding_and_self_alignment(self):
        allocator = AlignedAllocator(REGION, SPAN)
        block = allocator.alloc(1000)
        assert block.rounded == 1024
        assert is_aligned(block.base, 1024)

    def test_minimum_block_is_256(self):
        allocator = AlignedAllocator(REGION, SPAN)
        assert allocator.alloc(1).rounded == 256

    def test_zero_size_allowed(self):
        allocator = AlignedAllocator(REGION, SPAN)
        assert allocator.alloc(0).rounded == 256

    def test_negative_size_rejected(self):
        allocator = AlignedAllocator(REGION, SPAN)
        with pytest.raises(AllocationError):
            allocator.alloc(-1)

    def test_oversized_request_rejected(self):
        allocator = AlignedAllocator(REGION, SPAN)
        with pytest.raises(AllocationError):
            allocator.alloc(SPAN * 2)

    def test_out_of_memory(self):
        allocator = AlignedAllocator(REGION, 1024, min_block=256)
        for _ in range(4):
            allocator.alloc(256)
        with pytest.raises(AllocationError):
            allocator.alloc(256)

    def test_free_and_reuse(self):
        allocator = AlignedAllocator(REGION, SPAN)
        block = allocator.alloc(512)
        allocator.free(block.base)
        again = allocator.alloc(512)
        assert again.base == block.base  # buddy reuses the slot

    def test_coalescing_allows_large_alloc_after_frees(self):
        allocator = AlignedAllocator(REGION, 4096, min_block=256)
        blocks = [allocator.alloc(256) for _ in range(16)]
        for block in blocks:
            allocator.free(block.base)
        big = allocator.alloc(4096)  # only possible after full coalesce
        assert big.base == REGION

    def test_double_free_detected(self):
        allocator = AlignedAllocator(REGION, SPAN)
        block = allocator.alloc(512)
        allocator.free(block.base)
        with pytest.raises(DoubleFreeError):
            allocator.free(block.base)

    def test_invalid_free_detected(self):
        allocator = AlignedAllocator(REGION, SPAN)
        block = allocator.alloc(512)
        with pytest.raises(InvalidFreeError):
            allocator.free(block.base + 64)

    def test_misaligned_region_rejected(self):
        with pytest.raises(ConfigurationError):
            AlignedAllocator(100, SPAN)

    def test_meter_tracks_rounded_footprint(self):
        meter = FootprintMeter()
        allocator = AlignedAllocator(REGION, SPAN, meter=meter)
        allocator.alloc(1000)
        assert meter.current_bytes == 1024
        assert meter.peak_bytes == 1024

    @settings(max_examples=40, deadline=None)
    @given(st.lists(
        st.tuples(st.sampled_from(["alloc", "free"]),
                  st.integers(min_value=1, max_value=1 << 14)),
        min_size=1, max_size=60,
    ))
    def test_invariants_under_random_workload(self, ops):
        allocator = AlignedAllocator(REGION, SPAN)
        live = []
        for action, size in ops:
            if action == "alloc" or not live:
                try:
                    live.append(allocator.alloc(size).base)
                except AllocationError:
                    pass
            else:
                allocator.free(live.pop(size % len(live)))
            allocator.check_invariants()

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=1 << 12),
                    min_size=1, max_size=40))
    def test_no_overlap_between_live_blocks(self, sizes):
        allocator = AlignedAllocator(REGION, SPAN)
        spans = []
        for size in sizes:
            block = allocator.alloc(size)
            spans.append((block.base, block.base + block.rounded))
        spans.sort()
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert end <= start


class TestBaselineAllocator:
    def test_granule_padding_only(self):
        allocator = BaselineAllocator(REGION, SPAN)
        block = allocator.alloc(1000)
        assert block.padded == 1024
        block = allocator.alloc(1025)
        assert block.padded == 1280  # 256-granule, NOT power of two

    def test_first_fit_reuses_freed_space(self):
        allocator = BaselineAllocator(REGION, SPAN)
        a = allocator.alloc(512)
        allocator.alloc(512)
        allocator.free(a.base)
        c = allocator.alloc(512)
        assert c.base == a.base

    def test_double_and_invalid_free(self):
        allocator = BaselineAllocator(REGION, SPAN)
        block = allocator.alloc(512)
        with pytest.raises(InvalidFreeError):
            allocator.free(block.base + 4)
        allocator.free(block.base)
        with pytest.raises(DoubleFreeError):
            allocator.free(block.base)

    def test_hole_coalescing(self):
        allocator = BaselineAllocator(REGION, 2048)
        blocks = [allocator.alloc(512) for _ in range(4)]
        for block in blocks:
            allocator.free(block.base)
        big = allocator.alloc(2048)
        assert big.base == REGION

    def test_out_of_memory(self):
        allocator = BaselineAllocator(REGION, 1024)
        allocator.alloc(1024)
        with pytest.raises(AllocationError):
            allocator.alloc(1)


class TestDeviceHeapAllocator:
    """The kernel malloc() model of Figure 5."""

    def test_small_requests_use_80_byte_chunks(self):
        allocator = DeviceHeapAllocator(REGION, SPAN)
        block = allocator.alloc(50)
        assert block.unit == 80
        assert block.footprint == 80

    def test_chunk_rounding(self):
        allocator = DeviceHeapAllocator(REGION, SPAN)
        block = allocator.alloc(81)
        assert block.footprint == 160  # two 80-byte chunks

    def test_medium_requests_use_2208_byte_chunks(self):
        allocator = DeviceHeapAllocator(REGION, SPAN)
        block = allocator.alloc(3000)
        assert block.unit == 2208
        assert block.footprint == 2 * 2208

    def test_fragmentation_can_approach_half(self):
        allocator = DeviceHeapAllocator(REGION, SPAN)
        allocator.alloc(2209)  # just over one chunk: ~50% waste
        assert allocator.fragmentation() > 0.45

    def test_same_class_allocations_share_a_group(self):
        allocator = DeviceHeapAllocator(REGION, SPAN)
        a = allocator.alloc(64, thread=0)
        b = allocator.alloc(64, thread=1)
        assert abs(a.base - b.base) == 80  # adjacent chunks, one group

    def test_groups_by_size_class_are_disjoint(self):
        allocator = DeviceHeapAllocator(REGION, SPAN)
        small = allocator.alloc(64)
        medium = allocator.alloc(3000)
        assert abs(small.base - medium.base) >= 80 * 32

    def test_free_bookkeeping(self):
        allocator = DeviceHeapAllocator(REGION, SPAN)
        block = allocator.alloc(64)
        allocator.free(block.base)
        with pytest.raises(DoubleFreeError):
            allocator.free(block.base)
        with pytest.raises(InvalidFreeError):
            allocator.free(block.base + 8)

    def test_group_capacity_opens_new_group(self):
        allocator = DeviceHeapAllocator(REGION, SPAN)
        blocks = [allocator.alloc(64) for _ in range(33)]
        first_group = {b.base // (80 * 32) for b in blocks[:32]}
        assert blocks[32].base - blocks[0].base > 80 * 32

    def test_exhaustion(self):
        allocator = DeviceHeapAllocator(REGION, 4096)
        with pytest.raises(AllocationError):
            for _ in range(100):
                allocator.alloc(2000)


class TestStackAllocator:
    def test_grows_downward(self):
        stack = StackAllocator(0x100000, 65536)
        stack.push_frame()
        a = stack.alloca(64)
        b = stack.alloca(64)
        assert b.base < a.base

    def test_abi_alignment_without_lmi(self):
        stack = StackAllocator(0x100000, 65536)
        stack.push_frame()
        block = stack.alloca(50)
        assert block.rounded == 64  # 16-byte ABI granule
        assert block.base % 16 == 0

    def test_lmi_mode_rounds_and_aligns(self):
        stack = StackAllocator(0x100000, 65536, lmi_aligned=True)
        stack.push_frame()
        block = stack.alloca(300)
        assert block.rounded == 512
        assert is_aligned(block.base, 512)

    def test_lmi_minimum_alignment(self):
        stack = StackAllocator(0x100000, 65536, lmi_aligned=True)
        stack.push_frame()
        assert stack.alloca(8).rounded == 256

    def test_pop_frame_returns_dying_buffers(self):
        stack = StackAllocator(0x100000, 65536)
        stack.push_frame()
        stack.alloca(64)
        stack.push_frame()
        inner = stack.alloca(128)
        dying = stack.pop_frame()
        assert [b.base for b in dying] == [inner.base]
        assert stack.depth == 1

    def test_pop_restores_stack_pointer(self):
        stack = StackAllocator(0x100000, 65536)
        stack.push_frame()
        before = stack.stack_pointer
        stack.push_frame()
        stack.alloca(1024)
        stack.pop_frame()
        assert stack.stack_pointer == before

    def test_stack_overflow_detected(self):
        stack = StackAllocator(0x100000, 1024)
        stack.push_frame()
        with pytest.raises(AllocationError):
            stack.alloca(2048)

    def test_alloca_outside_frame_rejected(self):
        stack = StackAllocator(0x100000, 65536)
        with pytest.raises(AllocationError):
            stack.alloca(64)

    def test_pop_without_frame_rejected(self):
        stack = StackAllocator(0x100000, 65536)
        with pytest.raises(AllocationError):
            stack.pop_frame()

    @given(st.lists(st.integers(min_value=1, max_value=2048),
                    min_size=1, max_size=20))
    def test_lmi_buffers_never_overlap(self, sizes):
        stack = StackAllocator(0x100000, 1 << 20, lmi_aligned=True)
        stack.push_frame()
        spans = []
        for size in sizes:
            block = stack.alloca(size)
            spans.append((block.base, block.base + block.rounded))
            assert is_aligned(block.base, block.rounded)
        spans.sort()
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert end <= start


class TestSharedAllocator:
    BASE = 0x300_0000_0000

    def test_static_placement_bottom_up(self):
        shared = SharedAllocator(self.BASE, 1 << 16)
        a = shared.alloc_static(1024)
        b = shared.alloc_static(1024)
        assert b.base > a.base

    def test_lmi_alignment(self):
        shared = SharedAllocator(self.BASE, 1 << 16, lmi_aligned=True)
        block = shared.alloc_static(1000)
        assert block.rounded == 1024
        assert is_aligned(block.base, 1024)

    def test_dynamic_pool_at_top(self):
        shared = SharedAllocator(self.BASE, 1 << 16)
        shared.alloc_static(1024)
        pool = shared.alloc_dynamic_pool(8192)
        assert pool.base + pool.rounded <= self.BASE + (1 << 16)
        assert pool.dynamic

    def test_dynamic_pool_once_only(self):
        shared = SharedAllocator(self.BASE, 1 << 16)
        shared.alloc_dynamic_pool(4096)
        with pytest.raises(AllocationError):
            shared.alloc_dynamic_pool(4096)

    def test_static_after_dynamic_rejected(self):
        shared = SharedAllocator(self.BASE, 1 << 16)
        shared.alloc_dynamic_pool(4096)
        with pytest.raises(AllocationError):
            shared.alloc_static(256)

    def test_exhaustion(self):
        shared = SharedAllocator(self.BASE, 4096)
        shared.alloc_static(4000)
        with pytest.raises(AllocationError):
            shared.alloc_static(512)

    def test_pool_collision_with_statics_rejected(self):
        shared = SharedAllocator(self.BASE, 8192)
        shared.alloc_static(6000)
        with pytest.raises(AllocationError):
            shared.alloc_dynamic_pool(4096)


class TestFootprintMeter:
    def test_peak_tracking(self):
        meter = FootprintMeter()
        meter.grow(100)
        meter.grow(200)
        meter.shrink(150)
        meter.grow(10)
        assert meter.current_bytes == 160
        assert meter.peak_bytes == 300

    def test_over_shrink_rejected(self):
        meter = FootprintMeter()
        meter.grow(10)
        with pytest.raises(ConfigurationError):
            meter.shrink(11)

    def test_relative_overhead(self):
        assert relative_overhead(1000, 1859) == pytest.approx(0.859)
        assert relative_overhead(0, 0) == 0.0

    def test_relative_overhead_zero_base_nonzero_lmi_rejected(self):
        with pytest.raises(ConfigurationError):
            relative_overhead(0, 10)
