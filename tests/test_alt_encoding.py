"""Tests for the 64-bit-ISA checked-opcode alternative (paper VI-B)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.isa import Instruction, Opcode
from repro.isa.alt_encoding import (
    CHECKABLE_OPCODES,
    CHECKED_OPCODES,
    checked_variant_of,
    lower_to_checked,
    opcode_budget,
    recover_hints,
    variant_from_code,
)


class TestNamespace:
    def test_small_opcode_budget(self):
        """The paper's claim: only a small number of new opcodes."""
        assert opcode_budget() == 2 * len(CHECKABLE_OPCODES)
        assert opcode_budget() <= 20

    def test_codes_are_unique_and_above_base_isa(self):
        codes = [v.code for v in CHECKED_OPCODES.values()]
        assert len(codes) == len(set(codes))
        base_max = max(op.info.code for op in Opcode)
        assert min(codes) > base_max

    def test_mnemonics(self):
        padd = CHECKED_OPCODES[(Opcode.IADD, 0)]
        padd_r = CHECKED_OPCODES[(Opcode.IADD, 1)]
        assert padd.mnemonic == "PADD"
        assert padd_r.mnemonic == "PADD.R"

    def test_every_variant_has_an_int_alu_base(self):
        for variant in CHECKED_OPCODES.values():
            assert variant.base.info.ocu_eligible


class TestLowering:
    def test_unchecked_passes_through(self):
        instr = Instruction(Opcode.IADD, dst=4, srcs=(4, 5))
        assert lower_to_checked(instr) is instr

    def test_checked_loses_hint_bits(self):
        instr = Instruction(Opcode.IADD, dst=4, srcs=(4, 5),
                            hint_activate=True, hint_select=1)
        lowered = lower_to_checked(instr)
        assert not lowered.hint_activate
        assert lowered.srcs == instr.srcs and lowered.dst == instr.dst

    def test_variant_lookup(self):
        instr = Instruction(Opcode.LEA, dst=4, srcs=(4, 5),
                            hint_activate=True, hint_select=1)
        variant = checked_variant_of(instr)
        assert variant.base is Opcode.LEA
        assert variant.select == 1

    def test_uncheckable_opcode_rejected(self):
        instr = Instruction(Opcode.XOR, dst=4, srcs=(4, 5),
                            hint_activate=True)
        with pytest.raises(ConfigurationError):
            checked_variant_of(instr)

    def test_decoder_lookup_roundtrip(self):
        for variant in CHECKED_OPCODES.values():
            assert variant_from_code(variant.code) is variant

    def test_unknown_code_rejected(self):
        with pytest.raises(ConfigurationError):
            variant_from_code(0x999)


class TestInformationEquivalence:
    """The 64-bit scheme carries exactly the OCU's inputs."""

    @given(
        st.sampled_from(CHECKABLE_OPCODES),
        st.integers(min_value=0, max_value=1),
    )
    def test_hints_survive_the_opcode_roundtrip(self, opcode, select):
        instr = Instruction(opcode, dst=4, srcs=(4, 5),
                            hint_activate=True, hint_select=select)
        variant = checked_variant_of(instr)
        base, activate, recovered_select = recover_hints(
            variant_from_code(variant.code)
        )
        assert base is opcode
        assert activate
        assert recovered_select == select
