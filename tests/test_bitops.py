"""Unit + property tests for repro.common.bitops."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import bitops
from repro.common.errors import ConfigurationError


class TestToU64:
    def test_identity_in_range(self):
        assert bitops.to_u64(0x1234) == 0x1234

    def test_wraps_negative(self):
        assert bitops.to_u64(-1) == bitops.WORD_MASK

    def test_truncates_overflow(self):
        assert bitops.to_u64(1 << 64) == 0

    @given(st.integers())
    def test_always_in_range(self, value):
        assert 0 <= bitops.to_u64(value) <= bitops.WORD_MASK


class TestPowerOfTwo:
    def test_one_is_power(self):
        assert bitops.is_power_of_two(1)

    def test_zero_is_not(self):
        assert not bitops.is_power_of_two(0)

    def test_negative_is_not(self):
        assert not bitops.is_power_of_two(-4)

    @pytest.mark.parametrize("value", [2, 4, 256, 1 << 40])
    def test_powers(self, value):
        assert bitops.is_power_of_two(value)

    @pytest.mark.parametrize("value", [3, 6, 255, (1 << 40) + 1])
    def test_non_powers(self, value):
        assert not bitops.is_power_of_two(value)


class TestNextPowerOfTwo:
    def test_zero_rounds_to_one(self):
        assert bitops.next_power_of_two(0) == 1

    def test_exact_power_unchanged(self):
        assert bitops.next_power_of_two(256) == 256

    def test_rounds_up(self):
        assert bitops.next_power_of_two(257) == 512

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            bitops.next_power_of_two(-1)

    @given(st.integers(min_value=1, max_value=1 << 50))
    def test_result_is_power_and_minimal(self, value):
        result = bitops.next_power_of_two(value)
        assert bitops.is_power_of_two(result)
        assert result >= value
        assert result // 2 < value


class TestLog2:
    def test_log2_exact(self):
        assert bitops.log2_exact(256) == 8

    def test_log2_exact_rejects_non_power(self):
        with pytest.raises(ConfigurationError):
            bitops.log2_exact(100)

    def test_ceil_log2_exact(self):
        assert bitops.ceil_log2(1024) == 10

    def test_ceil_log2_rounds_up(self):
        assert bitops.ceil_log2(1025) == 11

    def test_ceil_log2_of_one(self):
        assert bitops.ceil_log2(1) == 0

    def test_ceil_log2_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            bitops.ceil_log2(0)


class TestAlignment:
    def test_align_up(self):
        assert bitops.align_up(100, 256) == 256

    def test_align_up_already_aligned(self):
        assert bitops.align_up(512, 256) == 512

    def test_align_down(self):
        assert bitops.align_down(0x12345678, 256) == 0x12345600

    def test_is_aligned(self):
        assert bitops.is_aligned(0x1000, 256)
        assert not bitops.is_aligned(0x1001, 256)

    def test_rejects_non_power_alignment(self):
        with pytest.raises(ConfigurationError):
            bitops.align_up(10, 3)

    @given(
        st.integers(min_value=0, max_value=1 << 50),
        st.integers(min_value=0, max_value=20),
    )
    def test_align_up_properties(self, value, alignment_log2):
        alignment = 1 << alignment_log2
        result = bitops.align_up(value, alignment)
        assert result >= value
        assert result % alignment == 0
        assert result - value < alignment


class TestBitFields:
    def test_low_mask(self):
        assert bitops.low_mask(8) == 0xFF

    def test_low_mask_zero(self):
        assert bitops.low_mask(0) == 0

    def test_low_mask_full(self):
        assert bitops.low_mask(64) == bitops.WORD_MASK

    def test_low_mask_out_of_range(self):
        with pytest.raises(ConfigurationError):
            bitops.low_mask(65)

    def test_bit_field_extract(self):
        assert bitops.bit_field(0xAB_CD, 8, 8) == 0xAB

    def test_set_bit_field(self):
        assert bitops.set_bit_field(0, 8, 8, 0xAB) == 0xAB00

    def test_set_bit_field_replaces(self):
        assert bitops.set_bit_field(0xFFFF, 4, 4, 0) == 0xFF0F

    def test_set_bit_field_rejects_oversized(self):
        with pytest.raises(ConfigurationError):
            bitops.set_bit_field(0, 0, 4, 16)

    @given(
        st.integers(min_value=0, max_value=bitops.WORD_MASK),
        st.integers(min_value=0, max_value=56),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=255),
    )
    def test_field_roundtrip(self, word, low, width, field):
        field &= bitops.low_mask(width)
        written = bitops.set_bit_field(word, low, width, field)
        assert bitops.bit_field(written, low, width) == field
        # Bits outside the field are untouched.
        mask = bitops.low_mask(width) << low
        assert written & ~mask == bitops.to_u64(word) & ~mask


class TestPopcount:
    def test_zero(self):
        assert bitops.popcount(0) == 0

    def test_all_ones(self):
        assert bitops.popcount(bitops.WORD_MASK) == 64

    @given(st.integers(min_value=0, max_value=bitops.WORD_MASK))
    def test_matches_bin_count(self, value):
        assert bitops.popcount(value) == bin(value).count("1")
