"""Tests for the run-all CLI and the security harness internals."""

import pytest

from repro.compiler import InvalidateExtent, KernelBuilder, run_lmi_pass
from repro.experiments.__main__ import EXPERIMENTS, main
from repro.security.harness import CaseResult, SecurityReport
from repro.security.testcases import CaseOutcome, Category


class TestCli:
    def test_all_experiment_names_registered(self):
        assert set(EXPERIMENTS) == {
            "fig1", "fig4", "fig12", "fig13", "table2", "table3", "table6",
            "feasibility",
        }

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["warpdrive"]) == 2
        assert "unknown experiments" in capsys.readouterr().out

    def test_single_fast_experiment_runs(self, capsys):
        assert main(["--fast", "fig4"]) == 0
        out = capsys.readouterr().out
        assert "backprop" in out
        assert "geomean" in out

    def test_feasibility_runs(self, capsys):
        assert main(["feasibility"]) == 0
        assert "vector_add" in capsys.readouterr().out


class TestLmiPassIdempotency:
    def test_double_run_inserts_nothing_new(self):
        b = KernelBuilder("x")
        b.alloca(64)
        b.scope_begin()
        b.alloca(32)
        b.scope_end()
        h = b.malloc(128)
        b.free(h)
        b.ret()
        module = b.module()
        run_lmi_pass(module)
        first = sum(
            isinstance(i, InvalidateExtent)
            for i in module.kernel.instructions()
        )
        second_result = run_lmi_pass(module)
        second = sum(
            isinstance(i, InvalidateExtent)
            for i in module.kernel.instructions()
        )
        assert first == second
        assert second_result.inserted_instructions == 0


def _fake_report():
    """A hand-built report exercising the aggregation paths."""
    report = SecurityReport()

    def add(case_id, category, mechanism, detected, oracle=True):
        report.results.append(
            CaseResult(
                case_id=case_id,
                category=category,
                mechanism=mechanism,
                outcome=CaseOutcome(detected=detected, oracle=oracle),
            )
        )

    for mech, hits in (("a", True), ("b", False)):
        add("g1", Category.GLOBAL_OOB, mech, hits)
        add("g2", Category.GLOBAL_OOB, mech, True)
        add("u1", Category.UAF, mech, hits)
    # A broken case: the oracle never fired.
    add("broken", Category.HEAP_OOB, "a", False, oracle=False)
    add("broken", Category.HEAP_OOB, "b", False, oracle=False)
    return report


class TestHarnessAggregation:
    def test_detections_counts_true_positives_only(self):
        report = _fake_report()
        assert report.detections("a", Category.GLOBAL_OOB) == 2
        assert report.detections("b", Category.GLOBAL_OOB) == 1

    def test_totals_count_unique_cases(self):
        report = _fake_report()
        assert report.total(Category.GLOBAL_OOB) == 2
        assert report.total(Category.UAF) == 1
        assert report.total(Category.INVALID_FREE) == 0

    def test_coverage_split_by_spatial(self):
        report = _fake_report()
        # Mechanism a: 2/2 global + 0/1 heap(broken) spatial.
        assert report.coverage("a", spatial=True) == pytest.approx(2 / 3)
        assert report.coverage("a", spatial=False) == pytest.approx(1.0)
        assert report.coverage("b", spatial=False) == pytest.approx(0.0)

    def test_oracle_failures_surface_broken_cases(self):
        report = _fake_report()
        assert [r.case_id for r in report.oracle_failures()] == ["broken"]

    def test_rows_include_every_category(self):
        rows = _fake_report().rows()
        assert len(rows) == len(Category)

    def test_empty_report_coverage_is_zero(self):
        assert SecurityReport().coverage("x", spatial=True) == 0.0
