"""Columnar trace substrate: converters, ``.npz`` container, memos.

Locks the lossless round-trip contracts the columnar engine rests on:

* ``KernelTrace ⇄ ColumnarTrace`` is the identity (property-based over
  randomly shaped traces, plus seeded workload traces);
* the versioned columnar ``.npz`` container round-trips bytes-exactly,
  refuses future format versions, and its v1 schema is locked by a
  golden file committed under ``tests/data/``;
* the trace cache's legacy pickle entries still load (with a
  deprecation note) and are upgraded to ``.npz`` in place;
* the ``np.repeat`` Baggy Bounds lowering produces exactly the
  dataclass :func:`~repro.sim.timing.expand_stream` streams;
* :class:`KernelTrace` summary statistics are computed once and
  cached, and returned copies are safe to mutate.
"""

from __future__ import annotations

import pickle
import warnings
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import TraceFormatError
from repro.sim import (
    KernelTrace,
    OpClass,
    TraceInstruction,
    dump_trace_npz,
    load_trace_npz,
    simulate,
)
from repro.sim.columnar import ColumnarTrace, columnar_of, expand_columnar
from repro.sim.timing import BaggyBoundsTiming, expand_stream
from repro.sim.tracefile import NPZ_FORMAT_VERSION
from repro.workloads import synthesize_trace
from repro.workloads.trace_cache import TraceCache, trace_key
from repro.workloads.profiles import profile

DATA_DIR = Path(__file__).parent / "data"
GOLDEN_NPZ = DATA_DIR / "golden_trace_v1.npz"

_MEMORY_OPS = [op for op in OpClass if op.is_memory]


@st.composite
def trace_instructions(draw):
    """One random, invariant-respecting trace instruction."""
    op = draw(st.sampled_from(list(OpClass)))
    depends = draw(st.booleans())
    if op.is_memory:
        lines = tuple(
            draw(
                st.lists(
                    st.integers(min_value=0, max_value=1 << 40),
                    min_size=1,
                    max_size=4,
                )
            )
        )
        buffer_ids = tuple(
            draw(
                st.lists(
                    st.integers(min_value=0, max_value=64),
                    min_size=1,
                    max_size=3,
                )
            )
        )
        return TraceInstruction(
            op=op, depends=depends, lines=lines, buffer_ids=buffer_ids
        )
    checked = op is OpClass.INT and draw(st.booleans())
    return TraceInstruction(op=op, depends=depends, checked=checked)


@st.composite
def kernel_traces(draw):
    """A random trace: 1–4 warps, any of which may be empty."""
    warps = draw(
        st.lists(
            st.lists(trace_instructions(), min_size=0, max_size=12),
            min_size=1,
            max_size=4,
        )
    )
    return KernelTrace(name=draw(st.sampled_from(["t", "κ-trace"])),
                       warps=warps)


# ----------------------------------------------------------------------
# KernelTrace ⇄ ColumnarTrace.


@settings(max_examples=60, deadline=None)
@given(trace=kernel_traces())
def test_columnar_roundtrip_property(trace):
    columnar = ColumnarTrace.from_trace(trace)
    back = columnar.to_trace()
    assert back.name == trace.name
    assert back.warps == trace.warps


@pytest.mark.parametrize("name", ["gaussian", "bfs", "LSTM"])
def test_columnar_roundtrip_workloads(name):
    trace = synthesize_trace(name, warps=4, instructions_per_warp=150)
    assert ColumnarTrace.from_trace(trace).to_trace().warps == trace.warps


def test_columnar_of_is_memoized():
    trace = synthesize_trace("nn", warps=2, instructions_per_warp=60)
    assert columnar_of(trace) is columnar_of(trace)


# ----------------------------------------------------------------------
# The versioned .npz container.


@settings(max_examples=25, deadline=None)
@given(trace=kernel_traces())
def test_npz_roundtrip_property(trace, tmp_path_factory):
    path = tmp_path_factory.mktemp("npz") / "trace.npz"
    dump_trace_npz(trace, path)
    back = load_trace_npz(path)
    assert back.name == trace.name
    assert back.warps == trace.warps


def test_npz_preseeds_columnar_memo(tmp_path):
    """Loading an .npz must leave the columnar arrays on the trace."""
    trace = synthesize_trace("needle", warps=3, instructions_per_warp=120)
    path = tmp_path / "trace.npz"
    dump_trace_npz(trace, path)
    back = load_trace_npz(path)
    assert columnar_of(back) == columnar_of(trace)
    # Simulating the loaded trace is indistinguishable from the source.
    got, want = simulate(back), simulate(trace)
    assert (got.cycles, got.stats) == (want.cycles, want.stats)


def test_npz_rejects_future_format(tmp_path):
    trace = synthesize_trace("nn", warps=2, instructions_per_warp=40)
    path = tmp_path / "trace.npz"
    dump_trace_npz(trace, path)
    with np.load(path) as archive:
        payload = {name: archive[name] for name in archive.files}
    payload["header"] = np.frombuffer(
        b'{"format": 999, "name": "future"}', dtype=np.uint8
    ).copy()
    np.savez_compressed(path, **payload)
    with pytest.raises(TraceFormatError, match="unsupported npz"):
        load_trace_npz(path)


def test_npz_rejects_missing_columns(tmp_path):
    trace = synthesize_trace("nn", warps=2, instructions_per_warp=40)
    path = tmp_path / "trace.npz"
    dump_trace_npz(trace, path)
    with np.load(path) as archive:
        payload = {name: archive[name] for name in archive.files}
    payload.pop("lines")
    np.savez_compressed(path, **payload)
    with pytest.raises(TraceFormatError, match="missing columns"):
        load_trace_npz(path)


def test_npz_rejects_garbage(tmp_path):
    path = tmp_path / "junk.npz"
    path.write_bytes(b"not an npz at all")
    with pytest.raises(TraceFormatError):
        load_trace_npz(path)


def _golden_trace() -> KernelTrace:
    """The hand-built trace frozen inside the golden v1 container."""
    return KernelTrace(
        name="golden-v1",
        warps=[
            [
                TraceInstruction(op=OpClass.INT, checked=True),
                TraceInstruction(
                    op=OpClass.LDG,
                    depends=True,
                    lines=(0x100, 0x180),
                    buffer_ids=(3,),
                ),
                TraceInstruction(op=OpClass.FP, depends=True),
            ],
            [],
            [
                TraceInstruction(
                    op=OpClass.STS, lines=(0x40,), buffer_ids=(0, 7)
                ),
                TraceInstruction(op=OpClass.LDL, lines=(0x2000,)),
            ],
        ],
    )


def test_golden_npz_schema_locked():
    """The committed v1 file must keep loading, byte-for-byte.

    This is the schema lock: any change to the column set, dtypes or
    header layout that cannot read v1 files must bump
    ``NPZ_FORMAT_VERSION`` (and grow a migration), not silently break
    every on-disk trace cache.
    """
    assert NPZ_FORMAT_VERSION == 1
    loaded = load_trace_npz(GOLDEN_NPZ)
    want = _golden_trace()
    assert loaded.name == want.name
    assert loaded.warps == want.warps


def test_golden_npz_matches_fresh_dump(tmp_path):
    """Today's writer still produces a container the v1 reader maps to
    the same trace (columns may compress differently; content may not
    drift)."""
    path = tmp_path / "fresh.npz"
    dump_trace_npz(_golden_trace(), path)
    assert load_trace_npz(path).warps == load_trace_npz(GOLDEN_NPZ).warps


# ----------------------------------------------------------------------
# Trace-cache disk layer: npz-primary, pickle honoured + upgraded.


def test_disk_layer_writes_npz(tmp_path):
    cache = TraceCache(disk_dir=str(tmp_path))
    cache.get_or_synthesize("gaussian", warps=2, instructions_per_warp=80)
    key = trace_key(
        profile("gaussian"), warps=2, instructions_per_warp=80
    )
    assert (tmp_path / f"trace-{key}.npz").exists()
    # A second cache over the same directory hits disk, not synthesis.
    other = TraceCache(disk_dir=str(tmp_path))
    other.get_or_synthesize("gaussian", warps=2, instructions_per_warp=80)
    assert other.stats.disk_hits == 1


def test_legacy_pickle_loads_with_deprecation_and_upgrades(tmp_path):
    trace = synthesize_trace("needle", warps=2, instructions_per_warp=90)
    key = trace_key(profile("needle"), warps=2, instructions_per_warp=90)
    with open(tmp_path / f"trace-{key}.pkl", "wb") as handle:
        pickle.dump(trace, handle)
    cache = TraceCache(disk_dir=str(tmp_path))
    with pytest.deprecated_call(match="legacy pickle"):
        loaded = cache.get_or_synthesize(
            "needle", warps=2, instructions_per_warp=90
        )
    assert loaded.warps == trace.warps
    assert cache.stats.disk_hits == 1
    # Upgraded in place: the .npz now exists and wins next time.
    assert (tmp_path / f"trace-{key}.npz").exists()
    fresh = TraceCache(disk_dir=str(tmp_path))
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        again = fresh.get_or_synthesize(
            "needle", warps=2, instructions_per_warp=90
        )
    assert again.warps == trace.warps


# ----------------------------------------------------------------------
# Vectorized Baggy Bounds expansion ≡ dataclass expansion.


@pytest.mark.parametrize("checks", [1, 3, 5])
def test_expand_columnar_matches_expand_stream(checks):
    trace = synthesize_trace("srad_v1", warps=3, instructions_per_warp=140)
    model = BaggyBoundsTiming(instructions_per_check=checks)
    vectorized = expand_columnar(columnar_of(trace), model).to_trace()
    assert vectorized.warps == [
        expand_stream(model, stream) for stream in trace.warps
    ]


@settings(max_examples=25, deadline=None)
@given(trace=kernel_traces())
def test_expand_columnar_matches_expand_stream_property(trace):
    model = BaggyBoundsTiming()
    vectorized = expand_columnar(
        ColumnarTrace.from_trace(trace), model
    ).to_trace()
    assert vectorized.warps == [
        expand_stream(model, stream) for stream in trace.warps
    ]


# ----------------------------------------------------------------------
# Cached KernelTrace summaries.


def test_summaries_cached_and_copies_safe():
    trace = synthesize_trace("bert", warps=3, instructions_per_warp=120)
    histogram = trace.op_histogram()
    assert sum(histogram.values()) == trace.total_instructions
    histogram[OpClass.INT] = -1  # mutate the returned copy
    assert trace.op_histogram()[OpClass.INT] != -1
    mix = trace.memory_region_mix()
    assert mix == pytest.approx(trace.memory_region_mix())
    mix["global"] = 99.0
    assert trace.memory_region_mix()["global"] != 99.0
    # The cache is hit: underlying stored dicts are the same objects.
    cache = trace._summaries()
    assert trace.checked_count() == cache["checked"]
    assert cache["histogram"] is trace._summaries()["histogram"]
    assert trace.memory_count() == sum(
        count
        for op, count in trace.op_histogram().items()
        if op.is_memory
    )
