"""Tests for the mini compiler: IR, builder, analysis, LMI pass, codegen."""

import pytest

from repro.common.errors import CompileError, ForbiddenCastError
from repro.compiler import (
    Alloca,
    Free,
    InvalidateExtent,
    IRType,
    KernelBuilder,
    PtrAdd,
    Ret,
    ScopeEnd,
    assert_feasible,
    compile_module,
    find_pointer_arithmetic,
    run_lmi_pass,
    scan_feasibility,
)
from repro.isa import Opcode


def _simple_kernel():
    b = KernelBuilder("simple", params=[("data", IRType.PTR)])
    tid = b.thread_idx()
    p = b.ptradd(b.param("data"), b.mul(tid, 4))
    b.store(p, 1, width=4)
    b.ret()
    return b.module()


class TestIRStructure:
    def test_verify_passes_on_wellformed(self):
        _simple_kernel().verify()

    def test_missing_terminator_rejected(self):
        b = KernelBuilder("bad")
        b.alloca(64)
        with pytest.raises(CompileError):
            b.module()

    def test_branch_to_unknown_label_rejected(self):
        b = KernelBuilder("bad")
        cond = b.cmp(__import__("repro.compiler", fromlist=["CmpKind"]).CmpKind.EQ,
                     b.thread_idx(), 0)
        b.branch(cond, "nowhere", "entry")
        with pytest.raises(CompileError):
            b.module()

    def test_terminator_mid_block_rejected(self):
        b = KernelBuilder("bad")
        b.ret()
        b.store(b.alloca(64), 1)
        b.ret()
        with pytest.raises(CompileError):
            b.module()

    def test_call_to_unknown_function_rejected(self):
        b = KernelBuilder("bad")
        b.call("ghost", [])
        b.ret()
        with pytest.raises(CompileError):
            b.module()

    def test_unknown_shared_array_rejected(self):
        b = KernelBuilder("bad")
        b.shared("missing")
        b.ret()
        with pytest.raises(CompileError):
            b.module()

    def test_duplicate_function_rejected(self):
        b = KernelBuilder("bad")
        b.device_function("helper")
        with pytest.raises(CompileError):
            b.device_function("helper")

    def test_alloca_requires_positive_size(self):
        b = KernelBuilder("bad")
        with pytest.raises(CompileError):
            b.alloca(0)

    def test_ptradd_requires_pointer_base(self):
        b = KernelBuilder("bad")
        with pytest.raises(CompileError):
            b.ptradd(b.const(5), 4)

    def test_load_requires_pointer(self):
        b = KernelBuilder("bad")
        with pytest.raises(CompileError):
            b.load(b.const(5))

    def test_unknown_param_lookup(self):
        b = KernelBuilder("bad")
        with pytest.raises(CompileError):
            b.param("nope")


class TestPointerAnalysis:
    def test_finds_all_ptradds(self):
        module = _simple_kernel()
        sites = find_pointer_arithmetic(module)
        assert len(sites) == 1
        assert isinstance(sites[0].instr, PtrAdd)
        assert sites[0].pointer_operand_index == 0

    def test_feasibility_clean_module(self):
        report = scan_feasibility(_simple_kernel())
        assert report.is_feasible
        assert report.total_violations == 0

    def test_inttoptr_reported(self):
        b = KernelBuilder("forged")
        p = b.inttoptr(b.const(0x1234))
        b.store(p, 1)
        b.ret()
        report = scan_feasibility(b.module())
        assert not report.is_feasible
        assert len(report.inttoptr_sites) == 1

    def test_ptrtoint_reported(self):
        b = KernelBuilder("leaky")
        buf = b.alloca(64)
        b.ptrtoint(buf)
        b.ret()
        report = scan_feasibility(b.module())
        assert len(report.ptrtoint_sites) == 1

    def test_pointer_store_reported(self):
        b = KernelBuilder("spill", params=[("slot", IRType.PTR)])
        buf = b.alloca(64)
        b.store(b.param("slot"), buf, width=8)
        b.ret()
        report = scan_feasibility(b.module())
        assert len(report.pointer_store_sites) == 1

    def test_pointer_store_can_be_allowed(self):
        b = KernelBuilder("spill", params=[("slot", IRType.PTR)])
        buf = b.alloca(64)
        b.store(b.param("slot"), buf, width=8)
        b.ret()
        report = scan_feasibility(b.module(), forbid_pointer_stores=False)
        assert report.is_feasible

    def test_assert_feasible_raises_compile_error(self):
        b = KernelBuilder("forged")
        p = b.inttoptr(b.const(0x1234))
        b.store(p, 1)
        b.ret()
        with pytest.raises(ForbiddenCastError):
            assert_feasible(b.module())


class TestLmiPass:
    def test_annotates_pointer_arithmetic(self):
        module = _simple_kernel()
        result = run_lmi_pass(module)
        assert result.annotated_ptr_arith == 1
        site = find_pointer_arithmetic(module)[0]
        assert site.instr.hint_activate
        assert site.instr.hint_select == 0

    def test_inserts_nullify_after_free(self):
        b = KernelBuilder("freer")
        h = b.malloc(512)
        b.free(h)
        b.ret()
        module = b.module()
        result = run_lmi_pass(module)
        assert result.free_nullifications == 1
        instrs = list(module.kernel.instructions())
        free_index = next(i for i, x in enumerate(instrs) if isinstance(x, Free))
        assert isinstance(instrs[free_index + 1], InvalidateExtent)
        assert instrs[free_index + 1].ptr is instrs[free_index].ptr

    def test_inserts_nullify_before_ret_for_allocas(self):
        b = KernelBuilder("stacky")
        b.alloca(128)
        b.alloca(64)
        b.ret()
        module = b.module()
        result = run_lmi_pass(module)
        assert result.scope_nullifications == 2
        instrs = list(module.kernel.instructions())
        assert isinstance(instrs[-1], Ret)
        assert isinstance(instrs[-2], InvalidateExtent)
        assert isinstance(instrs[-3], InvalidateExtent)

    def test_inserts_nullify_at_lexical_scope_end(self):
        b = KernelBuilder("scoped")
        b.scope_begin()
        b.alloca(128)
        b.scope_end()
        b.ret()
        module = b.module()
        run_lmi_pass(module)
        instrs = list(module.kernel.instructions())
        end_index = next(
            i for i, x in enumerate(instrs) if isinstance(x, ScopeEnd)
        )
        assert isinstance(instrs[end_index - 1], InvalidateExtent)

    def test_rejects_forbidden_casts(self):
        b = KernelBuilder("forged")
        p = b.inttoptr(b.const(0x1234))
        b.store(p, 1)
        b.ret()
        with pytest.raises(ForbiddenCastError):
            run_lmi_pass(b.module())

    def test_counts_rounded_allocas(self):
        b = KernelBuilder("stacky")
        b.alloca(100)
        b.alloca(100)
        b.ret()
        module = b.module()
        assert run_lmi_pass(module).rounded_allocas == 2

    def test_scope_exit_can_be_disabled(self):
        b = KernelBuilder("stacky")
        b.alloca(100)
        b.ret()
        module = b.module()
        result = run_lmi_pass(module, nullify_on_scope_exit=False)
        assert result.scope_nullifications == 0


class TestCodegen:
    def test_hint_bits_reach_microcode(self):
        module = _simple_kernel()
        run_lmi_pass(module)
        compiled = compile_module(module)
        kernel = compiled.functions["kernel"]
        checked = [
            (instr, word)
            for instr, word in zip(kernel.instructions, kernel.microcode)
            if instr.hint_activate
        ]
        assert len(checked) == 1
        instr, word = checked[0]
        assert instr.opcode is Opcode.IADD
        assert word.hint_activate

    def test_non_lmi_mode_drops_hints(self):
        module = _simple_kernel()
        run_lmi_pass(module)
        compiled = compile_module(module, lmi_mode=False)
        assert compiled.functions["kernel"].pointer_checked_count == 0

    def test_space_inference(self):
        b = KernelBuilder("spaces", params=[("g", IRType.PTR)],
                          shared_arrays=[("tile", 512)])
        b.store(b.param("g"), 1, width=4)          # global
        b.store(b.shared("tile"), 2, width=4)      # shared
        b.store(b.alloca(64), 3, width=4)          # local
        b.store(b.malloc(64), 4, width=4)          # heap -> global pipe
        b.ret()
        module = b.module()
        run_lmi_pass(module)
        mix = compile_module(module).total_mix()
        assert mix["STG"] == 2  # global param + heap
        assert mix["STS"] == 1
        assert mix["STL"] == 1

    def test_space_inference_through_ptradd(self):
        b = KernelBuilder("chain", shared_arrays=[("tile", 512)])
        p = b.ptradd(b.shared("tile"), 16)
        q = b.ptradd(p, 16)
        b.store(q, 1, width=4)
        b.ret()
        module = b.module()
        run_lmi_pass(module)
        assert compile_module(module).total_mix()["STS"] == 1

    def test_lmi_alloca_emits_extent_tagging(self):
        b = KernelBuilder("stacky")
        b.alloca(96)
        b.ret()
        module = b.module()
        run_lmi_pass(module)
        lmi_mix = compile_module(module, lmi_mode=True).total_mix()
        base_mix = compile_module(module, lmi_mode=False).total_mix()
        # One extra OR to materialise the extent into the pointer.
        assert lmi_mix.get("OR", 0) == base_mix.get("OR", 0) + 1

    def test_invalidate_lowering_only_in_lmi_mode(self):
        b = KernelBuilder("freer")
        h = b.malloc(64)
        b.free(h)
        b.ret()
        module = b.module()
        run_lmi_pass(module)
        lmi = compile_module(module, lmi_mode=True).total_mix()
        base = compile_module(module, lmi_mode=False).total_mix()
        assert lmi.get("AND", 0) > base.get("AND", 0)

    def test_microcode_emitted_for_every_instruction(self):
        module = _simple_kernel()
        run_lmi_pass(module)
        kernel = compile_module(module).functions["kernel"]
        assert len(kernel.microcode) == len(kernel.instructions)


class TestDisassembly:
    """The Figure 7 view: stack allocation compiled to SASS-like asm."""

    def test_stack_allocation_listing(self):
        b = KernelBuilder("dummy2")
        b.alloca(96)  # the paper's 0x60-byte stack buffer
        b.ret()
        module = b.module()
        run_lmi_pass(module)
        listing = compile_module(module).functions["kernel"].disassemble()
        assert ".text.kernel:" in listing
        assert "IADD3 R1, R1, 0x60;" in listing  # SP decrement
        assert "RET" in listing

    def test_hint_bits_visible_in_listing(self):
        module = _simple_kernel()
        run_lmi_pass(module)
        listing = compile_module(module).functions["kernel"].disassemble()
        assert "/*A S=0*/" in listing
