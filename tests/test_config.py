"""Tests for configuration objects and the exceptions hierarchy."""

import pytest

from repro.common.config import (
    DEFAULT_GPU_CONFIG,
    DEFAULT_LMI_CONFIG,
    CacheConfig,
    GpuConfig,
    LmiConfig,
)
from repro.common.errors import (
    ConfigurationError,
    DoubleFreeError,
    InvalidFreeError,
    KernelFault,
    MemorySafetyViolation,
    MemorySpace,
    ReproError,
    SpatialViolation,
    TemporalViolation,
    ViolationKind,
)


class TestGpuConfig:
    """Table IV parameters."""

    def test_defaults_match_table4(self):
        config = DEFAULT_GPU_CONFIG
        assert config.num_sms == 80
        assert config.clock_ghz == 2.0
        assert config.schedulers_per_sm == 4
        assert config.l1.size_bytes == 96 * 1024
        assert config.l1.hit_latency == 30
        assert config.l2.size_bytes == 4608 * 1024
        assert config.l2.ways == 24
        assert config.l2.hit_latency == 200
        assert config.dram_bytes == 8 * 1024 ** 3

    def test_max_warps(self):
        assert DEFAULT_GPU_CONFIG.max_warps_per_sm == 64

    def test_invalid_sm_count_rejected(self):
        with pytest.raises(ConfigurationError):
            GpuConfig(num_sms=0)

    def test_invalid_clock_rejected(self):
        with pytest.raises(ConfigurationError):
            GpuConfig(clock_ghz=0)


class TestCacheConfig:
    def test_num_sets(self):
        config = CacheConfig(size_bytes=96 * 1024, line_bytes=128, ways=4)
        assert config.num_sets == 192

    def test_non_power_line_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=1024, line_bytes=100, ways=2)

    def test_non_divisible_size_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=1000, line_bytes=128, ways=2)

    def test_non_positive_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=1024, line_bytes=128, ways=2, hit_latency=0)


class TestLmiConfig:
    def test_defaults(self):
        config = DEFAULT_LMI_CONFIG
        assert config.min_alignment == 256
        assert config.extent_bits == 5
        assert config.ocu_pipeline_cycles == 3

    def test_derived_quantities(self):
        config = DEFAULT_LMI_CONFIG
        assert config.min_alignment_log2 == 8
        assert config.max_extent == 31
        assert config.max_buffer_log2 == 38
        assert config.max_buffer_bytes == 1 << 38  # 256 GiB
        assert config.address_bits == 59

    def test_non_power_alignment_rejected(self):
        with pytest.raises(ConfigurationError):
            LmiConfig(min_alignment=100)

    def test_extent_bits_bounds(self):
        with pytest.raises(ConfigurationError):
            LmiConfig(extent_bits=0)
        with pytest.raises(ConfigurationError):
            LmiConfig(extent_bits=17)

    def test_alternative_alignment(self):
        config = LmiConfig(min_alignment=16)
        assert config.max_buffer_log2 == 4 + 30


class TestErrorHierarchy:
    def test_everything_derives_from_repro_error(self):
        for cls in (ConfigurationError, MemorySafetyViolation,
                    SpatialViolation, TemporalViolation, InvalidFreeError,
                    DoubleFreeError):
            assert issubclass(cls, ReproError)

    def test_violations_carry_default_kinds(self):
        assert SpatialViolation("x").kind is ViolationKind.SPATIAL
        assert TemporalViolation("x").kind is ViolationKind.TEMPORAL
        assert InvalidFreeError("x").kind is ViolationKind.INVALID_FREE
        assert DoubleFreeError("x").kind is ViolationKind.DOUBLE_FREE

    def test_violation_context_fields(self):
        violation = SpatialViolation(
            "boom", space=MemorySpace.SHARED, address=0x42, thread=9,
            mechanism="test",
        )
        assert violation.space is MemorySpace.SHARED
        assert violation.address == 0x42
        assert violation.thread == 9
        assert violation.mechanism == "test"

    def test_kernel_fault_wraps_violation(self):
        violation = SpatialViolation("boom")
        fault = KernelFault(violation, pc=12)
        assert fault.violation is violation
        assert fault.pc == 12

    def test_memory_space_enum(self):
        assert {s.value for s in MemorySpace} == {
            "global", "shared", "local", "heap"
        }
