"""Smoke tests: every example script runs cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def _run(script, *args, timeout=180):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExamples:
    def test_quickstart(self):
        result = _run("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "SpatialViolation" in result.stdout
        assert "TemporalViolation" in result.stdout
        assert "recovered" in result.stdout

    def test_mind_control_defense(self):
        result = _run("mind_control_defense.py")
        assert result.returncode == 0, result.stderr
        assert "BLOCKED" in result.stdout
        assert "corrupted silently" in result.stdout

    def test_device_malloc_fragmentation(self):
        result = _run("device_malloc_fragmentation.py")
        assert result.returncode == 0, result.stderr
        assert "stock malloc() waste" in result.stdout

    def test_mechanism_shootout(self):
        result = _run("mechanism_shootout.py")
        assert result.returncode == 0, result.stderr
        assert "Violation Test" in result.stdout
        assert "DETECTED" in result.stdout
        assert "missed" in result.stdout

    def test_trace_workflow(self, tmp_path):
        result = _run("trace_workflow.py", str(tmp_path / "traces"))
        assert result.returncode == 0, result.stderr
        assert "Replaying" in result.stdout
        assert (tmp_path / "traces" / "gaussian.trace").exists()

    @pytest.mark.slow
    def test_performance_tour_quick_set(self):
        result = _run("performance_tour.py", timeout=300)
        assert result.returncode == 0, result.stderr
        assert "geomean" in result.stdout
