"""Tests for the functional executor: semantics, control flow, oracle."""

import pytest

from repro.common.errors import (
    DoubleFreeError,
    InvalidFreeError,
    SimulationError,
)
from repro.compiler import CmpKind, IRType, KernelBuilder, run_lmi_pass
from repro.exec import GpuExecutor
from repro.mechanisms import BaselineMechanism, LmiMechanism


def run_kernel(builder_fn, mechanism=None, allocs=(), **launch_kwargs):
    b, post = builder_fn()
    module = b.module()
    run_lmi_pass(module)
    executor = GpuExecutor(module, mechanism or BaselineMechanism(),
                           **launch_kwargs)
    args = {name: executor.host_alloc(size) for name, size in allocs}
    result = executor.launch(args)
    return executor, result, post


class TestBasicSemantics:
    def test_store_then_load(self):
        b = KernelBuilder("rw", params=[("data", IRType.PTR)])
        b.store(b.param("data"), 0x1234, width=4)
        b.ret()
        module = b.module()
        executor = GpuExecutor(module, BaselineMechanism())
        data = executor.host_alloc(256)
        result = executor.launch({"data": data})
        assert result.completed
        assert executor.memory.load(executor.mechanism.translate(data), 4) == 0x1234

    def test_arithmetic(self):
        b = KernelBuilder("math", params=[("out", IRType.PTR)])
        v = b.mul(b.add(b.const(3), 4), 5)   # (3+4)*5 = 35
        v = b.sub(v, 5)                      # 30
        b.store(b.param("out"), v, width=4)
        b.ret()
        module = b.module()
        executor = GpuExecutor(module)
        out = executor.host_alloc(256)
        executor.launch({"out": out})
        assert executor.memory.load(out, 4) == 30

    def test_thread_and_block_indices(self):
        b = KernelBuilder("ids", params=[("out", IRType.PTR)])
        tid = b.thread_idx()
        bid = b.block_idx()
        flat = b.add(b.mul(bid, 4), tid)  # 4 threads per block
        slot = b.ptradd(b.param("out"), b.mul(flat, 4))
        b.store(slot, b.add(flat, 100), width=4)
        b.ret()
        module = b.module()
        executor = GpuExecutor(module, grid_blocks=2, block_threads=4)
        out = executor.host_alloc(256)
        executor.launch({"out": out})
        for flat in range(8):
            assert executor.memory.load(out + 4 * flat, 4) == 100 + flat

    def test_float_math(self):
        b = KernelBuilder("fp", params=[("out", IRType.PTR)])
        v = b.fmul(b.fadd(b.const(1.5, IRType.F32), 2.5), 2.0)
        b.store(b.param("out"), v, width=4)
        b.ret()
        module = b.module()
        executor = GpuExecutor(module)
        out = executor.host_alloc(256)
        executor.launch({"out": out})
        assert executor.memory.load_f32(out) == 8.0

    def test_missing_argument_rejected(self):
        b = KernelBuilder("needs", params=[("data", IRType.PTR)])
        b.ret()
        module = b.module()
        with pytest.raises(SimulationError):
            GpuExecutor(module).launch({})


class TestControlFlow:
    def test_branch_taken_and_not_taken(self):
        b = KernelBuilder("branchy", params=[("out", IRType.PTR)])
        tid = b.thread_idx()
        cond = b.cmp(CmpKind.EQ, tid, 0)
        b.branch(cond, "then", "else_")
        b.new_block("then")
        b.store(b.param("out"), 111, width=4)
        b.ret()
        b.new_block("else_")
        slot = b.ptradd(b.param("out"), b.mul(tid, 4))
        b.store(slot, 222, width=4)
        b.ret()
        module = b.module()
        executor = GpuExecutor(module, block_threads=2)
        out = executor.host_alloc(256)
        executor.launch({"out": out})
        assert executor.memory.load(out, 4) == 111
        assert executor.memory.load(out + 4, 4) == 222

    def test_loop_sums(self):
        b = KernelBuilder("loop", params=[("out", IRType.PTR)])
        acc = b.alloca(8)
        i = b.alloca(8)
        b.store(acc, 0, width=8)
        b.store(i, 0, width=8)
        b.jump("head")
        b.new_block("head")
        iv = b.load(i, width=8)
        cond = b.cmp(CmpKind.LT, iv, 10)
        b.branch(cond, "body", "exit")
        b.new_block("body")
        av = b.load(acc, width=8)
        b.store(acc, b.add(av, iv), width=8)
        b.store(i, b.add(iv, 1), width=8)
        b.jump("head")
        b.new_block("exit")
        b.store(b.param("out"), b.load(acc, width=8), width=8)
        b.ret()
        module = b.module()
        executor = GpuExecutor(module)
        out = executor.host_alloc(256)
        result = executor.launch({"out": out})
        assert result.completed
        assert executor.memory.load(out, 8) == sum(range(10))

    def test_runaway_loop_hits_step_limit(self):
        b = KernelBuilder("forever")
        b.jump("spin")
        b.new_block("spin")
        b.jump("spin")
        module = b.module()
        with pytest.raises(SimulationError):
            GpuExecutor(module, max_steps=1000).launch({})


class TestCallsAndScopes:
    def test_device_function_call_with_return(self):
        b = KernelBuilder("caller", params=[("out", IRType.PTR)])
        value = b.call("double_it", [b.const(21)])
        b.store(b.param("out"), value, width=4)
        b.ret()
        f = b.device_function("double_it", params=[("x", IRType.I64)])
        f.ret(f.mul(f.param("x"), 2))
        module = b.module()
        executor = GpuExecutor(module)
        out = executor.host_alloc(256)
        executor.launch({"out": out})
        assert executor.memory.load(out, 4) == 42

    def test_callee_frame_buffers_die_at_return(self):
        b = KernelBuilder("caller")
        b.call("make_buf", [], returns_value=False)
        b.ret()
        f = b.device_function("make_buf")
        f.alloca(256)
        f.ret()
        module = b.module()
        executor = GpuExecutor(module)
        executor.launch({})
        assert all(
            not r.live
            for r in executor.tracker.all_records
        )

    def test_nested_lexical_scopes(self):
        b = KernelBuilder("scopes")
        b.scope_begin()
        outer = b.alloca(256)
        b.scope_begin()
        inner = b.alloca(256)
        b.store(inner, 1, width=4)
        b.scope_end()
        b.store(outer, 2, width=4)  # outer still live here
        b.scope_end()
        b.ret()
        module = b.module()
        executor = GpuExecutor(module)
        result = executor.launch({})
        assert result.completed
        assert not result.oracle_violated

    def test_arity_mismatch_rejected(self):
        b = KernelBuilder("caller")
        b.call("f", [b.const(1), b.const(2)], returns_value=False)
        b.ret()
        f = b.device_function("f", params=[("x", IRType.I64)])
        f.ret()
        module = b.module()
        with pytest.raises(SimulationError):
            GpuExecutor(module).launch({})


class TestHostApi:
    def test_host_alloc_free_cycle(self):
        b = KernelBuilder("noop")
        b.ret()
        module = b.module()
        executor = GpuExecutor(module)
        p = executor.host_alloc(1024)
        record = executor.host_record(p)
        assert record is not None and record.live
        executor.host_free(p)
        assert not record.live

    def test_host_double_free_raises(self):
        b = KernelBuilder("noop")
        b.ret()
        executor = GpuExecutor(b.module())
        p = executor.host_alloc(1024)
        executor.host_free(p)
        with pytest.raises(DoubleFreeError):
            executor.host_free(p)

    def test_host_invalid_free_raises(self):
        b = KernelBuilder("noop")
        b.ret()
        executor = GpuExecutor(b.module())
        p = executor.host_alloc(1024)
        with pytest.raises(InvalidFreeError):
            executor.host_free(p + 64)

    def test_lmi_host_free_returns_invalidated_pointer(self):
        b = KernelBuilder("noop")
        b.ret()
        mechanism = LmiMechanism()
        executor = GpuExecutor(b.module(), mechanism)
        p = executor.host_alloc(1024)
        dead = executor.host_free(p)
        assert mechanism.ec.would_fault(dead)
        assert not mechanism.ec.would_fault(p)  # the stale copy survives


class TestOracle:
    def test_safe_program_has_no_events(self):
        b = KernelBuilder("safe", params=[("data", IRType.PTR)])
        b.store(b.param("data"), 1, width=4)
        b.ret()
        module = b.module()
        executor = GpuExecutor(module)
        data = executor.host_alloc(256)
        result = executor.launch({"data": data})
        assert not result.oracle_violated
        assert not result.detected
        assert not result.false_negative

    def test_oracle_sees_missed_violation(self):
        b = KernelBuilder("oob", params=[("data", IRType.PTR)])
        b.store(b.ptradd(b.param("data"), 4096), 1, width=4)
        b.ret()
        module = b.module()
        executor = GpuExecutor(module, BaselineMechanism())
        data = executor.host_alloc(256)
        result = executor.launch({"data": data})
        assert result.oracle_violated
        assert result.false_negative
        event = result.oracle_events[0]
        assert event.is_store
        assert event.width == 4

    def test_wild_write_actually_corrupts_memory(self):
        """Missed overflows must really corrupt the neighbour —
        canary mechanisms depend on it."""
        b = KernelBuilder("smash", params=[("a", IRType.PTR), ("b", IRType.PTR)])
        b.store(b.param("b"), 0x5AFE, width=4)
        b.store(b.ptradd(b.param("a"), 256), 0xBAD, width=4)
        b.ret()
        module = b.module()
        executor = GpuExecutor(module, BaselineMechanism())
        a = executor.host_alloc(256)
        bb = executor.host_alloc(256)
        executor.launch({"a": a, "bb": bb} | {"b": bb})
        # a+256 is exactly b's base under the tight baseline allocator.
        assert executor.memory.load(bb, 4) == 0xBAD

    def test_multiple_launches_accumulate(self):
        b = KernelBuilder("safe", params=[("data", IRType.PTR)])
        b.store(b.param("data"), 1, width=4)
        b.ret()
        module = b.module()
        executor = GpuExecutor(module)
        data = executor.host_alloc(256)
        first = executor.launch({"data": data})
        second = executor.launch({"data": data})
        assert first.completed and second.completed
