"""Executor edge cases: error paths, pointer comparison semantics,
scope misuse, and barrier-phase behaviour."""

import pytest

from repro.common.errors import SimulationError
from repro.compiler import CmpKind, IRType, KernelBuilder, run_lmi_pass
from repro.exec import GpuExecutor
from repro.mechanisms import BaselineMechanism, LmiMechanism


class TestErrorPaths:
    def test_fell_off_block_detected(self):
        from repro.compiler.ir import BasicBlock, Function, Module, Ret

        # Hand-build a malformed function that bypasses verify().
        function = Function(name="kernel")
        block = BasicBlock(label="entry")
        block.instrs.append(Ret())
        function.blocks.append(block)
        module = Module(name="bad")
        module.add_function(function)
        executor = GpuExecutor(module)  # verification passes here
        # Strip the terminator afterwards to hit the interpreter guard.
        block.instrs.pop()
        with pytest.raises(SimulationError):
            executor.launch({})

    def test_dyn_shared_without_pool_rejected(self):
        b = KernelBuilder("nopool")
        b.load(b.dyn_shared(), width=4)
        b.ret()
        module = b.module()
        with pytest.raises(SimulationError):
            GpuExecutor(module).launch({})

    def test_deeply_unbalanced_scope_end_rejected(self):
        # One stray scope_end consumes the implicit function frame
        # (tolerated); a second has nothing left to close.
        b = KernelBuilder("unbalanced")
        b.scope_end()
        b.scope_end()
        b.ret()
        module = b.module()
        with pytest.raises(SimulationError):
            GpuExecutor(module).launch({})

    def test_use_of_undefined_value_reported(self):
        from repro.compiler.ir import Load, Value

        b = KernelBuilder("undef")
        ghost = Value(name="ghost", type=IRType.PTR)
        b.emit(Load(ptr=ghost, width=4))
        b.ret()
        module = b.module()
        with pytest.raises(SimulationError):
            GpuExecutor(module).launch({})

    def test_bad_grid_dimensions_rejected(self):
        b = KernelBuilder("noop")
        b.ret()
        module = b.module()
        with pytest.raises(SimulationError):
            GpuExecutor(module, grid_blocks=0)


class TestPointerComparisonSemantics:
    """Pointer compares use address bits (the Figure 14 prerequisite)."""

    def test_tagged_pointers_compare_by_address(self):
        b = KernelBuilder("cmp", params=[("out", IRType.PTR)])
        h = b.malloc(256)
        end = b.ptradd(h, 256)  # extent poisoned by the OCU
        below = b.cmp(CmpKind.LT, h, end)
        b.store(b.param("out"), below, width=4)
        b.ret()
        module = b.module()
        run_lmi_pass(module)
        executor = GpuExecutor(module, LmiMechanism())
        out = executor.host_alloc(256)
        result = executor.launch({"out": out})
        assert result.completed
        # Despite h carrying extent bits and end carrying none, the
        # comparison sees base < base+256.
        assert executor.memory.load(executor.mechanism.translate(out), 4) == 1

    def test_pointer_equality_across_tags(self):
        b = KernelBuilder("eq", params=[("out", IRType.PTR)])
        h = b.malloc(256)
        same = b.ptradd(h, 0)
        equal = b.cmp(CmpKind.EQ, h, same)
        b.store(b.param("out"), equal, width=4)
        b.ret()
        module = b.module()
        run_lmi_pass(module)
        executor = GpuExecutor(module, LmiMechanism())
        out = executor.host_alloc(256)
        executor.launch({"out": out})
        assert executor.memory.load(executor.mechanism.translate(out), 4) == 1


class TestBarrierPhases:
    def test_producer_consumer_across_barrier(self):
        """Thread t reads what thread (t+1)%n wrote before the barrier —
        impossible under sequential-to-completion execution."""
        n = 8
        b = KernelBuilder("xchg", params=[("out", IRType.PTR)],
                          shared_arrays=[("slots", n * 4)])
        tid = b.thread_idx()
        slots = b.shared("slots")
        b.store(b.ptradd(slots, b.mul(tid, 4)), b.add(tid, 100), width=4)
        b.barrier()
        partner = b.add(tid, 1)
        wrapped = b.cmp(CmpKind.EQ, partner, n)
        b.branch(wrapped, "wrap", "read")
        b.new_block("wrap")
        b.store(b.ptradd(b.param("out"), b.mul(tid, 4)),
                b.load(slots, width=4), width=4)
        b.ret()
        b.new_block("read")
        value = b.load(b.ptradd(slots, b.mul(partner, 4)), width=4)
        b.store(b.ptradd(b.param("out"), b.mul(tid, 4)), value, width=4)
        b.ret()
        module = b.module()
        run_lmi_pass(module)
        executor = GpuExecutor(module, LmiMechanism(), block_threads=n)
        out = executor.host_alloc(256)
        result = executor.launch({"out": out})
        assert result.completed
        raw = executor.mechanism.translate(out)
        got = [executor.memory.load(raw + 4 * t, 4) for t in range(n)]
        assert got == [100 + (t + 1) % n for t in range(n)]

    def test_multiple_barriers_round_trip(self):
        b = KernelBuilder("pingpong", params=[("out", IRType.PTR)],
                          shared_arrays=[("slot", 256)])
        tid = b.thread_idx()
        slot = b.shared("slot")
        is_zero = b.cmp(CmpKind.EQ, tid, 0)
        b.branch(is_zero, "w1", "j1")
        b.new_block("w1")
        b.store(slot, 7, width=4)
        b.jump("j1")
        b.new_block("j1")
        b.barrier()
        doubled = b.mul(b.load(slot, width=4), 2)
        b.barrier()
        is_one = b.cmp(CmpKind.EQ, tid, 1)
        b.branch(is_one, "w2", "end")
        b.new_block("w2")
        b.store(b.param("out"), doubled, width=4)
        b.ret()
        b.new_block("end")
        b.ret()
        module = b.module()
        run_lmi_pass(module)
        executor = GpuExecutor(module, BaselineMechanism(), block_threads=4)
        out = executor.host_alloc(256)
        result = executor.launch({"out": out})
        assert result.completed
        assert executor.memory.load(out, 4) == 14

    def test_divergent_exit_before_barrier_is_tolerated(self):
        """Some threads return before the barrier; the others still run
        to completion (this is UB in CUDA; the model must not hang)."""
        b = KernelBuilder("diverge")
        tid = b.thread_idx()
        early = b.cmp(CmpKind.LT, tid, 2)
        b.branch(early, "out", "sync")
        b.new_block("out")
        b.ret()
        b.new_block("sync")
        b.barrier()
        b.ret()
        module = b.module()
        executor = GpuExecutor(module, BaselineMechanism(), block_threads=4)
        result = executor.launch({})
        assert result.completed
        assert result.threads_completed == 4


class TestStepAccounting:
    def test_steps_scale_with_threads(self):
        b = KernelBuilder("tiny")
        b.alloca(64)
        b.ret()
        module = b.module()
        run_lmi_pass(module)
        one = GpuExecutor(module, BaselineMechanism(), block_threads=1).launch({})
        four = GpuExecutor(module, BaselineMechanism(), block_threads=4).launch({})
        assert four.steps == 4 * one.steps

    def test_threads_completed_on_mid_grid_fault(self):
        b = KernelBuilder("third_fails")
        tid = b.thread_idx()
        h = b.malloc(256)
        is_bad = b.cmp(CmpKind.EQ, tid, 2)
        b.branch(is_bad, "bad", "good")
        b.new_block("bad")
        b.store(b.ptradd(h, 4096), 1, width=4)
        b.ret()
        b.new_block("good")
        b.store(h, 1, width=4)
        b.ret()
        module = b.module()
        run_lmi_pass(module)
        result = GpuExecutor(module, LmiMechanism(), block_threads=8).launch({})
        assert result.detected
        assert result.violation.thread == 2
