"""Executor-equivalence suite: compiled engine vs reference interpreter.

The closure-compiled engine (``repro.exec.compile``) and the original
isinstance-chain interpreter (``repro.exec.reference``) must be
indistinguishable through every observable surface: oracle events,
mechanism verdicts and stats, step counts, thread completion, and the
byte-for-byte final memory image (``SparseMemory.digest``).  This
suite locks them together over

* the whole kernel corpus x every registered mechanism (grid of 2
  blocks x 8 threads, deterministic non-trivial input buffers),
* the paper's Figure 14 delayed-termination walker (one-past-the-end
  pointer, loop exit by address comparison, poisoned deref),
* the full Table III security suite (spatial + temporal + intra-object
  cases) under representative mechanisms,
* telemetry parity: identical counter sets when the hub is enabled,
* engine selection (``executor=`` / ``REPRO_EXEC``) plumbing.
"""

import pytest

from repro.compiler import CmpKind, IRType, KernelBuilder, run_lmi_pass
from repro.exec import GpuExecutor, resolve_engine
from repro.exec.compile import _CompiledRunner
from repro.exec.reference import ReferenceThreadRunner
from repro.common.errors import ConfigurationError
from repro.mechanisms import MECHANISMS, create_mechanism
from repro.security.testcases import all_cases
from repro.telemetry.runtime import capture
from repro.workloads.kernels import KERNEL_CORPUS

ENGINES = ("compiled", "reference")
ALL_MECHANISMS = sorted(MECHANISMS)
#: Mechanisms spanning every design family (pointer-tagged, table,
#: canary, region, baseline) for the heavier security-suite sweep.
SECURITY_MECHANISMS = ["baseline", "lmi", "lmi-inmem", "cucatch", "gmod"]


# ----------------------------------------------------------------------
# Harness


def _walker_module(deref_after=False):
    """Figure 14: one-past-the-end walker (see tests/test_integration)."""
    b = KernelBuilder("walker")
    start = b.malloc(256, name="arr")  # 64 ints, exact power of two
    end = b.ptradd(start, 256, name="end")  # one past the end!
    p = b.alloca(8, name="pslot")
    b.store(p, 0, width=8)
    b.jump("head")
    b.new_block("head")
    iv = b.load(p, width=8)
    cond = b.cmp(CmpKind.LT, iv, 64)
    b.branch(cond, "body", "exit")
    b.new_block("body")
    slot = b.ptradd(start, b.mul(iv, 4))
    b.store(slot, b.add(b.load(slot, width=4), 1), width=4)
    b.store(p, b.add(iv, 1), width=8)
    b.jump("head")
    b.new_block("exit")
    if deref_after:
        b.load(end, width=4)
    b.ret()
    module = b.module()
    run_lmi_pass(module)
    return module


def _fingerprint(executor, result):
    """Everything an engine can observably influence, in one tuple."""
    violation = result.violation
    return (
        result.completed,
        None
        if violation is None
        else (type(violation).__name__, str(violation)),
        result.steps,
        result.threads_completed,
        tuple(result.oracle_events),
        result.mechanism_stats,
        executor.memory.digest(),
        executor.memory.resident_pages,
        executor.tracker.live_bytes(),
        len(executor.tracker.all_records),
        executor._steps,
    )


def _run_corpus_kernel(engine, build, mechanism_name):
    """Launch one corpus kernel with deterministic inputs; fingerprint."""
    module = build()
    executor = GpuExecutor(
        module,
        create_mechanism(mechanism_name),
        grid_blocks=2,
        block_threads=8,
        executor=engine,
    )
    args = {}
    for index, param in enumerate(module.kernel.params):
        if param.type is IRType.PTR:
            pointer = executor.host_alloc(1024)
            raw = executor.mechanism.translate(pointer)
            executor.memory.write_bytes(
                raw,
                bytes((7 * i + 3 * index + 1) % 13 for i in range(1024)),
            )
            args[param.name] = pointer
        else:
            args[param.name] = 3
    result = executor.launch(args)
    return _fingerprint(executor, result)


# ----------------------------------------------------------------------
# Corpus x mechanism matrix


class TestCorpusEquivalence:
    @pytest.mark.parametrize("mechanism", ALL_MECHANISMS)
    @pytest.mark.parametrize("kernel", sorted(KERNEL_CORPUS))
    def test_engines_agree(self, kernel, mechanism):
        build = KERNEL_CORPUS[kernel]
        compiled = _run_corpus_kernel("compiled", build, mechanism)
        reference = _run_corpus_kernel("reference", build, mechanism)
        assert compiled == reference


# ----------------------------------------------------------------------
# Figure 14 delayed termination


class TestDelayedTerminationEquivalence:
    @pytest.mark.parametrize("deref_after", [False, True])
    @pytest.mark.parametrize("mechanism", ["baseline", "lmi", "cucatch"])
    def test_walker(self, mechanism, deref_after):
        prints = {}
        for engine in ENGINES:
            executor = GpuExecutor(
                _walker_module(deref_after),
                create_mechanism(mechanism),
                executor=engine,
            )
            prints[engine] = _fingerprint(executor, executor.launch({}))
        assert prints["compiled"] == prints["reference"]

    def test_walker_completes_and_poisons_under_lmi(self):
        """Sanity: the compiled engine preserves the paper's semantics."""
        mechanism = create_mechanism("lmi")
        result = GpuExecutor(
            _walker_module(), mechanism, executor="compiled"
        ).launch({})
        assert result.completed
        assert not result.oracle_violated
        assert mechanism.ocu.stats.overflows >= 1


# ----------------------------------------------------------------------
# Security suite (Table III): spatial, temporal, intra-object


class TestSecuritySuiteEquivalence:
    @pytest.mark.parametrize("mechanism", SECURITY_MECHANISMS)
    def test_all_cases_agree(self, mechanism, monkeypatch):
        for case in all_cases():
            outcomes = {}
            for engine in ENGINES:
                monkeypatch.setenv("REPRO_EXEC", engine)
                outcome = case.run(create_mechanism(mechanism))
                outcomes[engine] = (
                    outcome.detected,
                    outcome.oracle,
                    None
                    if outcome.violation is None
                    else (
                        type(outcome.violation).__name__,
                        str(outcome.violation),
                    ),
                )
            assert outcomes["compiled"] == outcomes["reference"], (
                f"case {case.case_id} diverged under {mechanism}"
            )


# ----------------------------------------------------------------------
# Telemetry parity


class TestTelemetryEquivalence:
    @pytest.mark.parametrize("kernel", ["vector_add", "per_thread_scratch"])
    def test_counters_match_when_enabled(self, kernel):
        snapshots = {}
        for engine in ENGINES:
            with capture() as telem:
                _run_corpus_kernel("compiled" if engine == "compiled"
                                   else "reference",
                                   KERNEL_CORPUS[kernel], "lmi")
                snapshots[engine] = telem.registry.snapshot()["counters"]
        assert snapshots["compiled"] == snapshots["reference"]
        joined = " ".join(snapshots["compiled"])
        assert "exec.accesses" in joined
        assert "exec.steps" in joined


# ----------------------------------------------------------------------
# Engine selection plumbing


class TestEngineSelection:
    def test_default_is_compiled(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXEC", raising=False)
        assert resolve_engine() == "compiled"

    @pytest.mark.parametrize(
        "alias,expected",
        [
            ("compiled", "compiled"),
            ("closure", "compiled"),
            ("fast", "compiled"),
            ("default", "compiled"),
            ("reference", "reference"),
            ("REF", "reference"),
            ("interp", "reference"),
            (" interpreter ", "reference"),
        ],
    )
    def test_aliases(self, alias, expected):
        assert resolve_engine(alias) == expected

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_engine("turbo")
        with pytest.raises(ConfigurationError):
            GpuExecutor(
                KERNEL_CORPUS["vector_add"](), executor="turbo"
            )

    def test_env_var_selects_reference(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC", "reference")
        executor = GpuExecutor(KERNEL_CORPUS["vector_add"]())
        assert executor.engine == "reference"
        runner = executor._make_runner(0, 0, {
            p.name: executor.host_alloc(64)
            for p in executor.module.kernel.params
        })
        assert isinstance(runner, ReferenceThreadRunner)

    def test_keyword_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC", "reference")
        executor = GpuExecutor(
            KERNEL_CORPUS["vector_add"](), executor="compiled"
        )
        assert executor.engine == "compiled"
        runner = executor._make_runner(0, 0, {
            p.name: executor.host_alloc(64)
            for p in executor.module.kernel.params
        })
        assert isinstance(runner, _CompiledRunner)

    def test_program_compiled_once_and_lazily(self):
        executor = GpuExecutor(
            KERNEL_CORPUS["vector_add"](), executor="compiled"
        )
        assert executor._program is None  # lazy: nothing until launch
        args = {
            p.name: executor.host_alloc(64)
            for p in executor.module.kernel.params
        }
        executor.launch(args)
        program = executor._program
        assert program is not None
        executor.launch(args)
        assert executor._program is program  # reused, not recompiled
