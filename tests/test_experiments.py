"""Shape tests for every experiment driver (scaled-down runs).

These are the 'does the reproduction reproduce' tests: each asserts
the qualitative claims of the corresponding paper artefact.  Full-size
runs live in benchmarks/.
"""

import pytest

from repro.experiments import (
    PAPER_CRITICAL_PATH_NS,
    PAPER_OCU_GE_PER_THREAD,
    mismatches,
    run_fig1,
    run_fig4,
    run_fig12,
    run_fig13,
    run_table2,
    run_table3,
    run_table6,
)


@pytest.fixture(scope="module")
def fig12_small():
    return run_fig12(
        benchmarks=["gaussian", "needle", "LSTM", "bert", "hotspot"],
        warps=12,
        instructions_per_warp=600,
    )


class TestFig1:
    def test_ft_benchmarks_are_global_dominated(self):
        result = run_fig1(["bert", "decoding"], warps=4,
                          instructions_per_warp=1000)
        assert result.row("bert").global_frac > 0.9
        assert result.row("decoding").global_frac > 0.9

    def test_shared_heavy_benchmarks(self):
        result = run_fig1(["lud_cuda", "needle"], warps=4,
                          instructions_per_warp=1000)
        assert result.row("lud_cuda").shared_frac > 0.8
        assert result.row("needle").shared_frac > 0.75

    def test_fractions_sum_to_one(self):
        result = run_fig1(["hotspot"], warps=2, instructions_per_warp=500)
        row = result.row("hotspot")
        assert row.global_frac + row.shared_frac + row.local_frac == (
            pytest.approx(1.0)
        )

    def test_table_renders(self):
        assert "benchmark" in run_fig1(["bert"], warps=1,
                                       instructions_per_warp=100).format_table()


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig4()

    def test_power_of_two_benchmarks_have_zero_overhead(self, result):
        for name in ("hotspot", "srad_v1", "srad_v2", "lud_cuda", "gaussian"):
            assert result.row(name).overhead == pytest.approx(0.0)

    def test_backprop_matches_paper(self, result):
        assert result.row("backprop").overhead == pytest.approx(0.859, abs=0.02)

    def test_needle_matches_paper(self, result):
        assert result.row("needle").overhead == pytest.approx(0.929, abs=0.02)

    def test_geomean_matches_paper(self, result):
        assert result.geomean_overhead() == pytest.approx(0.1873, abs=0.03)

    def test_lmi_never_shrinks_footprint(self, result):
        assert all(row.overhead >= 0 for row in result.rows)


class TestFig12:
    def test_lmi_overhead_negligible(self, fig12_small):
        for row in fig12_small.rows:
            assert row.overhead("lmi") < 0.05

    def test_gpushield_spikes_on_needle_and_lstm(self, fig12_small):
        assert fig12_small.row("needle").overhead("gpushield") > 0.10
        assert fig12_small.row("LSTM").overhead("gpushield") > 0.10
        assert fig12_small.row("bert").overhead("gpushield") < 0.05
        assert fig12_small.row("hotspot").overhead("gpushield") < 0.05

    def test_baggy_peak_on_compute_bound(self, fig12_small):
        worst, overhead = fig12_small.max_overhead("baggy")
        assert worst == "gaussian"
        assert overhead > 2.0  # multi-x slowdown

    def test_ordering_lmi_beats_gpushield_beats_baggy(self, fig12_small):
        lmi = fig12_small.geomean_normalized("lmi")
        gpushield = fig12_small.geomean_normalized("gpushield")
        baggy = fig12_small.geomean_normalized("baggy")
        assert lmi < baggy
        assert gpushield < baggy

    def test_rows_expose_base_cycles(self, fig12_small):
        assert all(row.base_cycles > 0 for row in fig12_small.rows)

    def test_table_renders(self, fig12_small):
        assert "geomean" in fig12_small.format_table()


class TestFig13:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig13()

    def test_ad_suite_excluded(self, result):
        names = {row.benchmark for row in result.rows}
        assert len(names) == 24
        assert "BEVerse" not in names

    def test_geomeans_match_paper_band(self, result):
        assert result.geomean("lmi_dbi") == pytest.approx(72.95, rel=0.10)
        assert result.geomean("memcheck") == pytest.approx(32.98, rel=0.10)

    def test_memcheck_wins_gaussian(self, result):
        assert result.row("gaussian").winner == "memcheck"

    def test_lmi_dbi_wins_swin(self, result):
        assert result.row("swin").winner == "lmi_dbi"

    def test_both_tools_are_heavyweight(self, result):
        assert all(row.lmi_dbi > 5 and row.memcheck > 5 for row in result.rows)


class TestTable3:
    def test_reproduces_paper_exactly(self):
        assert mismatches(run_table3()) == []


class TestTable6:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table6()

    def test_lmi_row(self, result):
        row = result.row("LMI")
        assert row.gate_equivalents == PAPER_OCU_GE_PER_THREAD
        assert row.sram_bytes == 0

    def test_ocu_report(self, result):
        assert result.ocu.critical_path_ns == pytest.approx(
            PAPER_CRITICAL_PATH_NS, abs=0.01
        )

    def test_table_renders(self, result):
        text = result.format_table()
        assert "GPUShield" in text
        assert "register" in text


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table2(fast=True)

    def test_lmi_has_full_spatial_coverage_symbols(self, result):
        row = result.row("LMI")
        assert row.coverage == {
            "global": "●", "shared": "●", "stack": "●", "heap": "●"
        }
        assert row.temporal == "◐"
        assert not row.metadata_access

    def test_gpushield_symbols(self, result):
        row = result.row("GPUShield")
        assert row.coverage["global"] == "●"
        assert row.coverage["shared"] == "○"
        assert row.coverage["heap"] == "◐"
        assert row.temporal == "○"

    def test_gmod_global_partial_only(self, result):
        row = result.row("GMOD")
        assert row.coverage["global"] == "◐"
        assert row.coverage["shared"] == "○"

    def test_cucatch_symbols(self, result):
        row = result.row("cuCatch")
        assert row.coverage["heap"] == "○"
        assert row.coverage["stack"] == "◐"
        assert row.temporal == "◐"

    def test_published_rows_carried(self, result):
        assert result.row("No-Fat").perf_overhead == "8%"
        assert result.row("C3").temporal == "●"

    def test_table_renders(self, result):
        assert "LMI" in result.format_table()
