"""Tests for the Extent Checker (paper sections VII-C, VIII)."""

import pytest

from repro.common.errors import (
    MemorySpace,
    SpatialViolation,
    TemporalViolation,
)
from repro.hardware import ExtentChecker, OverflowCheckingUnit
from repro.pointer import DebugCode, PointerCodec


@pytest.fixture
def codec():
    return PointerCodec(device_size_limit=1 << 33)


@pytest.fixture
def ec(codec):
    return ExtentChecker(codec)


class TestAccessChecks:
    def test_valid_pointer_passes(self, ec, codec):
        pointer = codec.encode(0x40000, 1024)
        ec.check_access(pointer)  # must not raise

    def test_zero_extent_faults_spatial(self, ec, codec):
        pointer = codec.invalidate(codec.encode(0x40000, 1024))
        with pytest.raises(SpatialViolation):
            ec.check_access(pointer)

    def test_temporal_debug_extent_faults_temporal(self, ec, codec):
        pointer = codec.encode_debug(
            codec.encode(0x40000, 1024), DebugCode.TEMPORAL_VIOLATION
        )
        with pytest.raises(TemporalViolation):
            ec.check_access(pointer)

    def test_fault_carries_context(self, ec, codec):
        pointer = codec.invalidate(codec.encode(0x40000, 1024))
        with pytest.raises(SpatialViolation) as info:
            ec.check_access(pointer, space=MemorySpace.HEAP, thread=7)
        assert info.value.space is MemorySpace.HEAP
        assert info.value.thread == 7
        assert info.value.address == 0x40000
        assert info.value.mechanism == "lmi"

    def test_raw_untagged_address_faults(self, ec):
        # An address with extent 0 in its top bits is by definition
        # unverified; the EC rejects it.
        with pytest.raises(SpatialViolation):
            ec.check_access(0x40000)


class TestNonRaisingQueries:
    def test_would_fault(self, ec, codec):
        good = codec.encode(0x40000, 1024)
        assert not ec.would_fault(good)
        assert ec.would_fault(codec.invalidate(good))

    def test_classify(self, ec, codec):
        good = codec.encode(0x40000, 1024)
        assert ec.classify(good) is None
        assert ec.classify(codec.invalidate(good)) is SpatialViolation
        stamped = codec.encode_debug(good, DebugCode.TEMPORAL_VIOLATION)
        assert ec.classify(stamped) is TemporalViolation


class TestStats:
    def test_counters(self, ec, codec):
        good = codec.encode(0x40000, 1024)
        ec.check_access(good)
        with pytest.raises(SpatialViolation):
            ec.check_access(codec.invalidate(good))
        assert ec.stats.checks == 2
        assert ec.stats.faults == 1
        ec.reset_stats()
        assert ec.stats.checks == 0


class TestOcuEcPipeline:
    """The full hardware path: OCU poisons, EC faults on dereference."""

    def test_delayed_termination_end_to_end(self, codec):
        ocu = OverflowCheckingUnit(codec)
        ec = ExtentChecker(codec)
        pointer = codec.encode(0x40000, 1024)
        # Pointer walks one past the end (Figure 14's loop): the OCU
        # clears the extent but nothing faults yet.
        walked = ocu.check(pointer, pointer + 1024).value
        assert codec.extent_of(walked) == 0
        # Only an actual dereference trips the EC.
        with pytest.raises(SpatialViolation):
            ec.check_access(walked)

    def test_no_false_positive_without_dereference(self, codec):
        ocu = OverflowCheckingUnit(codec)
        ec = ExtentChecker(codec)
        pointer = codec.encode(0x40000, 1024)
        for offset in range(0, 1024, 4):
            result = ocu.check(pointer, pointer + offset)
            ec.check_access(result.value)  # all in-bounds: no raise
        assert ec.stats.faults == 0
