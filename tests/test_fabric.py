"""Experiment-fabric suite: memoization, stealing, shards, resume.

Locks the contracts of :mod:`repro.experiments.fabric`:

* the cell digest covers the full input closure (trace request,
  mechanism + expansion key, GPU config, code fingerprint) — any
  change flips it, nothing else does;
* the cell cache degrades every corruption mode (truncation, garbage,
  foreign entries, telemetry-less records) to a miss-and-rebuild,
  never to wrong results;
* exports stay byte-identical across cache states (cold / warm /
  corrupted), worker counts, shard assignments, and worker deaths —
  the fabric's one non-negotiable invariant;
* a worker dying mid-cell is re-dispatched exactly once;
* an interrupted run resumes from the journal and finishes with
  byte-identical artifacts (subprocess SIGINT test);
* the progress board and ``repro top`` surface skipped cells
  distinctly from done ones, with skips excluded from the EWMA/ETA.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import format_top
from repro.common.config import DEFAULT_GPU_CONFIG
from repro.experiments import engine as engine_module
from repro.experiments import fabric as fabric_module
from repro.experiments import run_fig12
from repro.experiments.engine import SimJob
from repro.experiments.fabric import (
    CELL_CACHE_ENV,
    FAIL_CELL_ENV,
    FAIL_DIR_ENV,
    SHARD_ENV,
    SHARD_WAIT_ENV,
    CellCache,
    cell_digest,
    fabric_counters,
    reset_fabric_counters,
    resolve_cell_cache,
    resolve_shard,
)
from repro.telemetry.export import chrome_trace, metrics_json
from repro.telemetry.progress import ProgressBoard
from repro.telemetry.runtime import capture


@pytest.fixture(autouse=True)
def _clean_fabric(monkeypatch):
    """Zeroed counters and no leaked fabric env between tests."""
    for name in (
        CELL_CACHE_ENV, SHARD_ENV, SHARD_WAIT_ENV,
        FAIL_CELL_ENV, FAIL_DIR_ENV,
    ):
        monkeypatch.delenv(name, raising=False)
    reset_fabric_counters()
    yield
    reset_fabric_counters()


def _job(**overrides) -> SimJob:
    base = dict(
        benchmark="gaussian", mechanism="lmi",
        warps=3, instructions_per_warp=200,
    )
    base.update(overrides)
    return SimJob(**base)


# ----------------------------------------------------------------------
# Digest composition


class TestCellDigest:
    def test_stable_across_calls(self):
        assert cell_digest(_job(), DEFAULT_GPU_CONFIG) == cell_digest(
            _job(), DEFAULT_GPU_CONFIG
        )

    def test_every_input_flips_the_digest(self):
        variants = [
            _job(),
            _job(benchmark="needle"),
            _job(mechanism="gpushield"),
            _job(warps=4),
            _job(instructions_per_warp=201),
            _job(seed_salt=1),
        ]
        digests = {cell_digest(v, DEFAULT_GPU_CONFIG) for v in variants}
        assert len(digests) == len(variants)

    def test_config_flips_the_digest(self):
        import dataclasses

        tweaked = dataclasses.replace(DEFAULT_GPU_CONFIG, dram_latency=351)
        assert cell_digest(_job(), tweaked) != cell_digest(
            _job(), DEFAULT_GPU_CONFIG
        )

    def test_code_fingerprint_flips_the_digest(self, monkeypatch):
        before = cell_digest(_job(), DEFAULT_GPU_CONFIG)
        monkeypatch.setattr(fabric_module, "_code_fp", "0" * 64)
        assert cell_digest(_job(), DEFAULT_GPU_CONFIG) != before


# ----------------------------------------------------------------------
# Cache robustness


def _record(digest: str, telemetry=None):
    return {
        "schema": fabric_module.CELL_SCHEMA,
        "digest": digest,
        "job": {"benchmark": "gaussian", "mechanism": "lmi"},
        "cycles": 123,
        "stats": {"instructions": 456},
        "phases": {"sim": 0.5},
        "telemetry": telemetry,
    }


class TestCellCache:
    def test_round_trip(self, tmp_path):
        cache = CellCache(str(tmp_path))
        cache.store(_record("d1"))
        loaded = cache.load("d1", want_events=False)
        assert loaded["cycles"] == 123
        assert loaded["stats"] == {"instructions": 456}
        assert cache.stats.hits == 1 and cache.stats.stores == 1
        assert cache.journal_digests() == {"d1"}

    def test_missing_entry_is_a_miss(self, tmp_path):
        cache = CellCache(str(tmp_path))
        assert cache.load("nope", want_events=False) is None
        assert cache.stats.misses == 1 and cache.stats.corrupt == 0

    def test_truncated_entry_is_corrupt_miss(self, tmp_path):
        cache = CellCache(str(tmp_path))
        cache.store(_record("d1"))
        path = cache.path_for("d1")
        raw = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(raw[: len(raw) - 7])
        assert cache.load("d1", want_events=False) is None
        assert cache.stats.corrupt == 1

    def test_garbage_entry_is_corrupt_miss(self, tmp_path):
        cache = CellCache(str(tmp_path))
        with open(cache.path_for("d1"), "wb") as handle:
            handle.write(b"not a cell record at all\n")
        assert cache.load("d1", want_events=False) is None
        assert cache.stats.corrupt == 1

    def test_foreign_digest_is_corrupt_miss(self, tmp_path):
        # A checksum-valid record filed under the wrong digest (renamed
        # or copied) must not be served.
        cache = CellCache(str(tmp_path))
        cache.store(_record("d1"))
        os.rename(cache.path_for("d1"), cache.path_for("d2"))
        assert cache.load("d2", want_events=False) is None
        assert cache.stats.corrupt == 1

    def test_eventless_record_misses_when_events_wanted(self, tmp_path):
        cache = CellCache(str(tmp_path))
        cache.store(_record("d1", telemetry=None))
        assert cache.load("d1", want_events=True) is None
        assert cache.load("d1", want_events=False) is not None

    def test_quiet_load_counts_nothing(self, tmp_path):
        cache = CellCache(str(tmp_path))
        cache.load("nope", want_events=False, quiet=True)
        assert cache.stats.misses == 0

    def test_journal_tolerates_torn_lines(self, tmp_path):
        cache = CellCache(str(tmp_path))
        cache.store(_record("d1"))
        with open(cache.journal_path, "a", encoding="utf-8") as handle:
            handle.write("{torn json\n")
        cache.store(_record("d2"))
        assert cache.journal_digests() == {"d1", "d2"}

    def test_concurrent_writers_never_tear_journal_lines(self, tmp_path):
        """Two handles (threads here; flock also covers processes)
        hammering one journal: every appended line stays valid JSON."""
        import json
        import threading

        per_writer = 40
        caches = [CellCache(str(tmp_path)) for _ in range(2)]
        start = threading.Barrier(2, timeout=10)
        errors = []

        def writer(slot):
            try:
                start.wait()
                for index in range(per_writer):
                    caches[slot].store(_record(f"w{slot}-{index}"))
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(slot,)) for slot in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60)
        assert not errors
        # Every line parses and every digest arrived exactly once — no
        # interleaved or torn appends.
        with open(caches[0].journal_path, encoding="utf-8") as handle:
            lines = [line for line in handle if line.strip()]
        digests = [json.loads(line)["digest"] for line in lines]
        assert len(digests) == 2 * per_writer
        assert sorted(digests) == sorted(
            f"w{slot}-{index}"
            for slot in range(2)
            for index in range(per_writer)
        )
        # Both handles' stat counters survived the hammering intact.
        assert sum(cache.stats.stores for cache in caches) == 2 * per_writer


class TestResolvers:
    def test_cell_cache_env_and_memoization(self, monkeypatch, tmp_path):
        assert resolve_cell_cache() is None
        monkeypatch.setenv(CELL_CACHE_ENV, str(tmp_path / "cells"))
        first = resolve_cell_cache()
        assert first is not None
        assert resolve_cell_cache() is first  # stats accumulate

    def test_shard_parsing(self, monkeypatch):
        assert resolve_shard() is None
        assert resolve_shard("0/2") == (0, 2)
        assert resolve_shard("1/3") == (1, 3)
        assert resolve_shard("0/1") is None  # degrades to no sharding
        for bad in ("2/2", "-1/2", "x/y", "3"):
            with pytest.raises(ValueError):
                resolve_shard(bad)
        monkeypatch.setenv(SHARD_ENV, "1/2")
        assert resolve_shard() == (1, 2)


# ----------------------------------------------------------------------
# Byte-identity across cache states, shards, and worker deaths


_BENCHMARKS = ("gaussian", "needle", "LSTM")
_SIZES = dict(warps=3, instructions_per_warp=200)
_CELLS = len(_BENCHMARKS) * 4  # mechanisms: baseline, baggy, gpushield, lmi


def _fig12_with_exports(jobs: int = 1):
    """(table text, metrics JSON, trace JSON) for one captured run."""
    with capture(sample_every=1) as hub:
        result = run_fig12(_BENCHMARKS, jobs=jobs, **_SIZES)
        metrics = json.dumps(
            metrics_json(hub.registry, recorder=hub.recorder),
            sort_keys=True,
        )
        trace = json.dumps(
            chrome_trace(hub.tracer, hub.recorder), sort_keys=True
        )
    return result.format_table(), metrics, trace


class TestByteIdentity:
    def test_cold_and_warm_match_uncached(self, monkeypatch, tmp_path):
        baseline = _fig12_with_exports()
        monkeypatch.setenv(CELL_CACHE_ENV, str(tmp_path / "cells"))
        cold = _fig12_with_exports()
        assert cold == baseline
        assert fabric_counters()["cells_executed"] == _CELLS
        reset_fabric_counters()
        warm = _fig12_with_exports()
        assert warm == baseline
        counts = fabric_counters()
        assert counts["cells_skipped"] == _CELLS
        assert counts["cells_executed"] == 0

    def test_warm_run_matches_under_worker_pool(
        self, monkeypatch, tmp_path
    ):
        baseline = _fig12_with_exports()
        monkeypatch.setenv(CELL_CACHE_ENV, str(tmp_path / "cells"))
        monkeypatch.setattr(engine_module.os, "cpu_count", lambda: 4)
        assert _fig12_with_exports(jobs=4) == baseline  # cold, pool
        reset_fabric_counters()
        assert _fig12_with_exports(jobs=4) == baseline  # warm, pool
        assert fabric_counters()["cells_skipped"] == _CELLS

    def test_corrupted_entry_rebuilds_identically(
        self, monkeypatch, tmp_path
    ):
        baseline = _fig12_with_exports()
        monkeypatch.setenv(CELL_CACHE_ENV, str(tmp_path / "cells"))
        _fig12_with_exports()  # populate
        cache = resolve_cell_cache()
        digest = cell_digest(
            SimJob("gaussian", "lmi", **_SIZES), DEFAULT_GPU_CONFIG
        )
        path = cache.path_for(digest)
        raw = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(raw[: len(raw) // 2])
        reset_fabric_counters()
        assert _fig12_with_exports() == baseline
        counts = fabric_counters()
        assert counts["cells_executed"] == 1  # rebuilt the bad cell
        assert counts["cells_skipped"] == _CELLS - 1
        # ...and the rebuild upgraded the entry in place.
        assert cache.load(digest, want_events=True) is not None

    def test_worker_death_redispatches_exactly_once(
        self, monkeypatch, tmp_path
    ):
        baseline = _fig12_with_exports()
        monkeypatch.setattr(engine_module.os, "cpu_count", lambda: 4)
        monkeypatch.setenv(FAIL_CELL_ENV, "needle:gpushield")
        monkeypatch.setenv(FAIL_DIR_ENV, str(tmp_path))
        assert _fig12_with_exports(jobs=4) == baseline
        counts = fabric_counters()
        assert counts["cells_redispatched"] == 1
        assert counts["cells_executed"] == _CELLS
        # The marker proves the injected death actually fired.
        assert os.path.exists(str(tmp_path / "fabric-fail-once"))

    def test_shard_run_is_complete_and_identical(
        self, monkeypatch, tmp_path
    ):
        baseline = _fig12_with_exports()
        monkeypatch.setenv(CELL_CACHE_ENV, str(tmp_path / "cells"))
        monkeypatch.setenv(SHARD_ENV, "0/2")
        # No peer shard is running, and the wait is 0: the foreign
        # half is computed locally as a steal of last resort — the
        # invocation still yields the complete artifact set.
        assert _fig12_with_exports() == baseline
        counts = fabric_counters()
        assert counts["cells_executed"] == _CELLS
        assert counts["cells_stolen"] == _CELLS // 2
        # The other shard now finds everything published.
        reset_fabric_counters()
        monkeypatch.setenv(SHARD_ENV, "1/2")
        assert _fig12_with_exports() == baseline
        assert fabric_counters()["cells_skipped"] == _CELLS

    def test_shard_without_cache_fails_loudly(self, monkeypatch):
        monkeypatch.setenv(SHARD_ENV, "0/2")
        with pytest.raises(ValueError, match="cell-cache"):
            run_fig12(("gaussian",), warps=2, instructions_per_warp=120)


# ----------------------------------------------------------------------
# SIGINT + --resume (subprocess, full CLI path)


_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _cli_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(_REPO_ROOT, "src")
    for name in (CELL_CACHE_ENV, SHARD_ENV, SHARD_WAIT_ENV,
                 FAIL_CELL_ENV, FAIL_DIR_ENV):
        env.pop(name, None)
    return env


def _run_cli(args, timeout=240):
    return subprocess.run(
        [sys.executable, "-m", "repro.experiments", "fig12", "--fast"]
        + args,
        cwd=_REPO_ROOT, env=_cli_env(), timeout=timeout,
        capture_output=True, text=True,
    )


@pytest.mark.slow
def test_resume_after_sigint_is_byte_identical(tmp_path):
    cells = str(tmp_path / "cells")
    baseline_metrics = tmp_path / "baseline.metrics.json"
    done = _run_cli(["--metrics", str(baseline_metrics)])
    assert done.returncode == 0, done.stderr

    # Interrupt a cached run once the journal shows progress.
    interrupted = subprocess.Popen(
        [sys.executable, "-m", "repro.experiments", "fig12", "--fast",
         "--cell-cache", cells,
         "--metrics", str(tmp_path / "never.metrics.json")],
        cwd=_REPO_ROOT, env=_cli_env(),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    journal = os.path.join(cells, "journal.jsonl")
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        if interrupted.poll() is not None:
            break  # finished before we could interrupt; still a valid warm state
        if os.path.exists(journal) and os.path.getsize(journal) > 0:
            interrupted.send_signal(signal.SIGINT)
            break
        time.sleep(0.05)
    interrupted.wait(timeout=120)

    resumed_metrics = tmp_path / "resumed.metrics.json"
    resumed = _run_cli([
        "--cell-cache", cells, "--resume",
        "--metrics", str(resumed_metrics),
    ])
    assert resumed.returncode == 0, resumed.stderr
    assert "[fabric] resuming" in resumed.stdout
    assert resumed_metrics.read_bytes() == baseline_metrics.read_bytes()


# ----------------------------------------------------------------------
# Progress board + repro top: skipped is distinct from done


class TestSkippedOnTheBoard:
    def _board(self):
        board = ProgressBoard()
        board.begin_run("warm")
        return board

    def test_job_skipped_transitions_and_counts(self):
        board = self._board()
        job_id = board.job_queued("gaussian", "lmi")
        board.job_skipped(job_id)
        run = board.snapshot()["run"]
        assert run["skipped"] == 1
        assert run["done"] == 0 and run["queued"] == 0

    def test_skipped_is_terminal(self):
        board = self._board()
        job_id = board.job_queued("gaussian", "lmi")
        board.job_skipped(job_id)
        board.job_finished(job_id)  # must not double-transition
        run = board.snapshot()["run"]
        assert run["skipped"] == 1 and run["done"] == 0

    def test_skipped_does_not_feed_the_ewma(self):
        board = self._board()
        done_id = board.job_queued("gaussian", "lmi")
        board.job_running(done_id)
        board.job_finished(done_id)
        ewma_after_done = board.snapshot()["run"]["ewma_job_seconds"]
        skip_id = board.job_queued("needle", "lmi")
        board.job_skipped(skip_id)
        assert (
            board.snapshot()["run"]["ewma_job_seconds"] == ewma_after_done
        )

    def test_none_and_unknown_ids_are_noops(self):
        board = self._board()
        board.job_skipped(None)
        board.job_skipped("job-999")
        assert board.snapshot()["run"]["skipped"] == 0

    def test_format_top_shows_skipped_only_when_present(self):
        snapshot = {
            "run": {
                "name": "fig12", "status": "running", "total": 12,
                "done": 4, "skipped": 8, "running": 0, "queued": 0,
                "failed": 0, "retries": 0,
            },
        }
        rendered = format_top(snapshot)
        assert "8 skipped" in rendered
        snapshot["run"]["skipped"] = 0
        assert "skipped" not in format_top(snapshot)
