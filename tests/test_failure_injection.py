"""Failure-injection tests: corrupted state must degrade safely.

The hardware models must never crash on garbage inputs — they either
pass the value through or raise a :class:`MemorySafetyViolation`.
Resource exhaustion surfaces as :class:`AllocationError`, not silent
misbehaviour.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import (
    AllocationError,
    MemorySafetyViolation,
)
from repro.compiler import CmpKind, IRType, KernelBuilder, run_lmi_pass
from repro.exec import GpuExecutor
from repro.hardware import ExtentChecker, OverflowCheckingUnit
from repro.mechanisms import GmodMechanism, LmiMechanism, create_mechanism
from repro.pointer import PointerCodec


class TestBitFlipRobustness:
    """Random single-bit flips in tagged pointers."""

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=63))
    def test_ec_never_crashes_on_flipped_pointers(self, bit):
        codec = PointerCodec(device_size_limit=1 << 33)
        ec = ExtentChecker(codec)
        pointer = codec.encode(0x40000, 1024) ^ (1 << bit)
        try:
            ec.check_access(pointer)
        except MemorySafetyViolation:
            pass  # detection is an acceptable outcome

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=-4096, max_value=4096),
    )
    def test_ocu_never_crashes_on_flipped_pointers(self, bit, delta):
        codec = PointerCodec(device_size_limit=1 << 33)
        ocu = OverflowCheckingUnit(codec)
        pointer = codec.encode(0x40000, 1024) ^ (1 << bit)
        result = ocu.check(pointer, pointer + delta)
        assert isinstance(result.value, int)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=59, max_value=63))
    def test_extent_bit_flips_are_fail_closed_or_detected(self, bit):
        """Flipping extent bits either keeps the pointer valid with a
        different (possibly larger) extent or makes the EC fault — it
        never silently turns into an unchecked pointer class."""
        codec = PointerCodec(device_size_limit=1 << 33)
        ec = ExtentChecker(codec)
        flipped = codec.encode(0x40000, 1024) ^ (1 << bit)
        extent = codec.extent_of(flipped)
        if ec.would_fault(flipped):
            with pytest.raises(MemorySafetyViolation):
                ec.check_access(flipped)
        else:
            assert 1 <= extent <= codec.max_size_extent


class TestMemoryCorruption:
    def test_canary_detects_out_of_band_corruption(self):
        """Corruption performed outside the kernel (e.g. by a DMA/bug)
        is still caught by GMOD's end-of-kernel sweep."""
        b = KernelBuilder("innocent", params=[("data", IRType.PTR)])
        b.store(b.param("data"), 1, width=4)
        b.ret()
        module = b.module()
        run_lmi_pass(module)
        mechanism = GmodMechanism()
        executor = GpuExecutor(module, mechanism)
        data = executor.host_alloc(1024)
        # Out-of-band smash of the trailing canary.
        executor.memory.store(executor.mechanism.translate(data) + 1024, 0xBAD, 4)
        result = executor.launch({"data": data})
        assert result.detected

    def test_lmi_register_state_is_immune_to_memory_corruption(self):
        """LMI keeps bounds in registers: corrupting *memory* between
        launches cannot forge capabilities."""
        b = KernelBuilder("reader", params=[("data", IRType.PTR)])
        b.load(b.param("data"), width=4)
        b.ret()
        module = b.module()
        run_lmi_pass(module)
        executor = GpuExecutor(module, LmiMechanism())
        data = executor.host_alloc(1024)
        raw = executor.mechanism.translate(data)
        executor.memory.write_bytes(raw, b"\xff" * 1024)  # scribble data
        result = executor.launch({"data": data})
        assert result.completed  # data corruption != capability forgery


class TestResourceExhaustion:
    def test_heap_exhaustion_surfaces_as_allocation_error(self):
        b = KernelBuilder("hog")
        i = b.alloca(8)
        b.store(i, 0, width=8)
        b.jump("head")
        b.new_block("head")
        iv = b.load(i, width=8)
        b.branch(b.cmp(CmpKind.LT, iv, 10_000), "body", "exit")
        b.new_block("body")
        b.malloc(1 << 20)  # never freed: 10k MiB >> 64 MiB arena
        b.store(i, b.add(iv, 1), width=8)
        b.jump("head")
        b.new_block("exit")
        b.ret()
        module = b.module()
        run_lmi_pass(module)
        with pytest.raises(AllocationError):
            GpuExecutor(module, LmiMechanism()).launch({})

    def test_stack_exhaustion_surfaces_as_allocation_error(self):
        b = KernelBuilder("deep")
        b.call("recurse", [b.const(0)], returns_value=False)
        b.ret()
        f = b.device_function("recurse", params=[("depth", IRType.I64)])
        f.alloca(4096)
        cond = f.cmp(CmpKind.LT, f.param("depth"), 10_000)
        f.branch(cond, "again", "stop")
        f.new_block("again")
        f.call("recurse", [f.add(f.param("depth"), 1)], returns_value=False)
        f.ret()
        f.new_block("stop")
        f.ret()
        module = b.module()
        run_lmi_pass(module)
        with pytest.raises(AllocationError):
            GpuExecutor(module, LmiMechanism(), max_steps=10_000_000).launch({})

    @pytest.mark.parametrize("mechanism", ["baseline", "lmi", "gpushield"])
    def test_arena_recovers_after_failed_launch(self, mechanism):
        """An OOM launch must not poison the executor for later use."""
        b = KernelBuilder("hog2")
        b.malloc(1 << 30)  # bigger than the arena
        b.ret()
        module = b.module()
        run_lmi_pass(module)
        executor = GpuExecutor(module, create_mechanism(mechanism))
        with pytest.raises(AllocationError):
            executor.launch({})
        # Host-side allocation still works afterwards.
        assert executor.host_alloc(1024) != 0
