"""Property-based fuzzing of the full stack.

Two system-level invariants:

1. **No false positives** — randomly generated *safe* kernels complete
   under every mechanism with zero detections and zero oracle events.
2. **LMI ≡ rounded-bounds oracle** — for a random buffer size and
   access offset, LMI detects the access iff it falls outside the
   2^n-rounded buffer (and the ground-truth oracle flags it iff it
   falls outside the *requested* size).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.bitops import next_power_of_two
from repro.compiler import IRType, KernelBuilder, run_lmi_pass
from repro.exec import GpuExecutor
from repro.mechanisms import create_mechanism

MECHANISMS = ["baseline", "lmi", "gpushield", "cucatch", "gmod", "memcheck"]


@st.composite
def safe_program_ops(draw):
    """A random sequence of memory-safe operations."""
    ops = []
    n_ops = draw(st.integers(min_value=1, max_value=12))
    for _ in range(n_ops):
        kind = draw(st.sampled_from(
            ["heap", "stack", "global_rw", "heap_rw_free"]
        ))
        if kind == "heap":
            size = draw(st.integers(min_value=4, max_value=2048))
            offset = draw(st.integers(min_value=0, max_value=size - 4))
            ops.append(("heap", size, offset))
        elif kind == "stack":
            size = draw(st.integers(min_value=4, max_value=1024))
            offset = draw(st.integers(min_value=0, max_value=size - 4))
            ops.append(("stack", size, offset))
        elif kind == "global_rw":
            offset = draw(st.integers(min_value=0, max_value=1020))
            ops.append(("global_rw", 0, offset))
        else:
            size = draw(st.integers(min_value=4, max_value=512))
            ops.append(("heap_rw_free", size, 0))
    return ops


def _build_safe_module(ops):
    b = KernelBuilder("fuzz", params=[("data", IRType.PTR)])
    for index, (kind, size, offset) in enumerate(ops):
        if kind == "heap":
            h = b.malloc(size)
            b.store(b.ptradd(h, offset), index, width=4)
        elif kind == "stack":
            buf = b.alloca(size)
            b.store(b.ptradd(buf, offset), index, width=4)
            b.load(b.ptradd(buf, offset), width=4)
        elif kind == "global_rw":
            slot = b.ptradd(b.param("data"), offset)
            b.store(slot, index, width=4)
            b.load(slot, width=4)
        else:  # heap_rw_free
            h = b.malloc(size)
            b.store(h, index, width=4)
            b.free(h)
    b.ret()
    module = b.module()
    run_lmi_pass(module)
    return module


class TestNoFalsePositives:
    @settings(max_examples=25, deadline=None)
    @given(safe_program_ops())
    def test_safe_programs_pass_all_mechanisms(self, ops):
        for name in MECHANISMS:
            module = _build_safe_module(ops)
            executor = GpuExecutor(module, create_mechanism(name))
            data = executor.host_alloc(1024)
            result = executor.launch({"data": data})
            assert result.completed, (name, ops, result.violation)
            assert not result.oracle_violated, (name, ops)

    @settings(max_examples=10, deadline=None)
    @given(safe_program_ops(), st.integers(min_value=2, max_value=8))
    def test_safe_programs_pass_multithreaded(self, ops, threads):
        module = _build_safe_module(ops)
        executor = GpuExecutor(
            module, create_mechanism("lmi"), block_threads=threads
        )
        data = executor.host_alloc(1024)
        result = executor.launch({"data": data})
        assert result.completed


class TestLmiEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=4, max_value=1 << 14),
        st.integers(min_value=0, max_value=1 << 15),
    )
    def test_detection_matches_rounded_bounds(self, size, offset):
        b = KernelBuilder("probe")
        h = b.malloc(size)
        b.store(b.ptradd(h, offset), 1, width=4)
        b.ret()
        module = b.module()
        run_lmi_pass(module)
        result = GpuExecutor(module, create_mechanism("lmi")).launch({})

        rounded = max(next_power_of_two(size), 256)
        # LMI checks the *address* extent, not the access width: a
        # wide access straddling the rounded boundary from a valid
        # address goes undetected (granularity gap at the edge).
        lmi_should_detect = not (0 <= offset < rounded)
        oracle_should_flag = not (offset + 4 <= size)
        assert result.detected == lmi_should_detect, (size, offset)
        assert result.oracle_violated == oracle_should_flag, (size, offset)

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=4, max_value=1 << 12),
        st.lists(st.integers(min_value=-64, max_value=64), min_size=1,
                 max_size=8),
    )
    def test_chained_arithmetic_matches_cumulative_offset(self, size, deltas):
        """A chain of ptradds detects iff any *prefix* leaves the
        rounded buffer — once poisoned, always poisoned."""
        b = KernelBuilder("chain")
        h = b.malloc(size)
        p = h
        for delta in deltas:
            p = b.ptradd(p, delta)
        b.store(p, 1, width=4)
        b.ret()
        module = b.module()
        run_lmi_pass(module)
        result = GpuExecutor(module, create_mechanism("lmi")).launch({})

        rounded = max(next_power_of_two(size), 256)
        cumulative = 0
        poisoned = False
        for delta in deltas:
            cumulative += delta
            if not 0 <= cumulative < rounded:
                poisoned = True
        final_oob = not (0 <= cumulative < rounded)
        assert result.detected == (poisoned or final_oob), (size, deltas)
