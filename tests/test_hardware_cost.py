"""Tests for the gate-cost model (paper Table VI, section XI-C)."""

import math

import pytest

from repro.common.errors import ConfigurationError
from repro.experiments.table6_hardware import (
    PAPER_CRITICAL_PATH_NS,
    PAPER_FMAX_GHZ,
    PAPER_OCU_GE_PER_THREAD,
    PAPER_PIPELINE_CYCLES,
    PAPER_REGISTER_SLICES,
    TARGET_CLOCK_GHZ,
)
from repro.hardware import (
    Block,
    build_ocu_netlist,
    hardware_overhead_table,
    lmi_overhead_row,
    published_comparators,
    synthesize,
    synthesize_ocu,
)


class TestBlocks:
    def test_area_is_count_times_ge(self):
        block = Block("x", "xor2", count=10)
        assert block.area_ge == 25.0

    def test_unknown_gate_rejected(self):
        with pytest.raises(ConfigurationError):
            Block("x", "quantum", count=1)

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            Block("x", "nand2", count=-1)

    def test_sequential_blocks_have_no_path_delay(self):
        block = Block("q", "dff", count=64, levels=3)
        assert block.is_sequential
        assert block.path_delay_ns == 0.0

    def test_off_path_blocks_have_no_delay(self):
        block = Block("x", "xor2", count=4, on_critical_path=False)
        assert block.path_delay_ns == 0.0


class TestOcuSynthesis:
    def test_matches_paper_ge(self):
        report = synthesize_ocu()
        assert round(report.synthesized_area_ge) == PAPER_OCU_GE_PER_THREAD

    def test_matches_paper_critical_path(self):
        report = synthesize_ocu()
        assert report.critical_path_ns == pytest.approx(
            PAPER_CRITICAL_PATH_NS, abs=0.01
        )

    def test_matches_paper_fmax(self):
        report = synthesize_ocu()
        assert report.fmax_ghz == pytest.approx(PAPER_FMAX_GHZ, abs=0.02)

    def test_register_slices_at_gpu_clock(self):
        report = synthesize_ocu()
        assert report.register_slices_for(TARGET_CLOCK_GHZ) == PAPER_REGISTER_SLICES
        assert report.pipeline_cycles_for(TARGET_CLOCK_GHZ) == PAPER_PIPELINE_CYCLES

    def test_single_cycle_below_fmax(self):
        report = synthesize_ocu()
        assert report.pipeline_cycles_for(1.5) == 1

    def test_netlist_contains_papers_components(self):
        names = {block.name for block in build_ocu_netlist()}
        # Section VII: MUX, mask generator, XOR, AND, zero comparator,
        # extent clear, input queue.
        assert {
            "operand_mux",
            "mask_thermometer",
            "xor_change",
            "mask_and",
            "zero_or_tree",
            "extent_clear",
            "input_queue",
        } <= names

    def test_naive_area_splits_comb_and_seq(self):
        report = synthesize_ocu()
        assert report.naive_area_ge == (
            report.combinational_area_ge + report.sequential_area_ge
        )
        assert report.sequential_area_ge > 0

    def test_wider_address_costs_more(self):
        narrow = synthesize_ocu(address_bits=43)
        wide = synthesize_ocu(address_bits=59)
        assert wide.synthesized_area_ge > narrow.synthesized_area_ge

    def test_invalid_compound_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            synthesize("x", build_ocu_netlist(), compound_cell_factor=1.5)

    def test_register_slices_need_positive_clock(self):
        report = synthesize_ocu()
        with pytest.raises(ConfigurationError):
            report.register_slices_for(0)


class TestTable6:
    def test_all_rows_present(self):
        names = [row.name for row in hardware_overhead_table()]
        assert names == ["No-Fat", "C3", "IMT", "GPUShield", "LMI"]

    def test_lmi_needs_no_sram(self):
        assert lmi_overhead_row().sram_bytes == 0

    def test_lmi_verification_scope_is_smallest(self):
        row = lmi_overhead_row()
        assert "NoC" not in row.verification_scope
        assert "cache" not in row.verification_scope

    def test_lmi_ge_far_below_cpu_schemes(self):
        table = {row.name: row for row in hardware_overhead_table()}
        assert table["LMI"].gate_equivalents < table["No-Fat"].gate_equivalents / 100
        assert table["LMI"].gate_equivalents < table["C3"].gate_equivalents / 100

    def test_published_rows_preserved(self):
        table = {row.name: row for row in published_comparators()}
        assert table["GPUShield"].sram_bytes == 910
        assert table["IMT"].gate_equivalents == 900
        assert table["No-Fat"].gate_equivalents == 59476
        assert table["C3"].gate_equivalents == 27280
