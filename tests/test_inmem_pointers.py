"""Tests for the in-memory pointer extension (paper VI-A future work)."""

import pytest

from repro.common.errors import SpatialViolation
from repro.compiler import IRType, KernelBuilder, run_lmi_pass
from repro.exec import GpuExecutor
from repro.mechanisms import LmiInMemoryPointerMechanism, LmiMechanism


def _spill_module(tamper=False, oob_after_reload=False):
    """Store a heap pointer to a stack slot, optionally corrupt the
    slot with a plain integer store, reload and dereference."""
    b = KernelBuilder("spill")
    h = b.malloc(512)
    b.store(h, 0x5AFE, width=4)
    slot = b.alloca(8, name="spill_slot")
    b.store(slot, h, width=8)  # pointer store (needs the extension)
    if tamper:
        # Overwrite the spilled pointer bytes with attacker data: a
        # plausible address with forged extent bits.
        b.store(slot, 0x0800000212340000, width=8)
    reloaded = b.load(slot, width=8, type_=IRType.PTR)
    target = b.ptradd(reloaded, 4096) if oob_after_reload else reloaded
    b.load(target, width=4)
    b.ret()
    module = b.module()
    run_lmi_pass(module, forbid_pointer_stores=False)
    return module


class TestVerifiedSpills:
    def test_legit_spill_roundtrip_works(self):
        mechanism = LmiInMemoryPointerMechanism()
        result = GpuExecutor(_spill_module(), mechanism).launch({})
        assert result.completed
        assert not result.oracle_violated
        assert mechanism.verified_spills() == 1

    def test_reloaded_pointer_is_still_bounds_checked(self):
        mechanism = LmiInMemoryPointerMechanism()
        result = GpuExecutor(
            _spill_module(oob_after_reload=True), mechanism
        ).launch({})
        assert isinstance(result.violation, SpatialViolation)

    def test_tampered_spill_is_rejected_on_use(self):
        mechanism = LmiInMemoryPointerMechanism()
        result = GpuExecutor(_spill_module(tamper=True), mechanism).launch({})
        assert isinstance(result.violation, SpatialViolation)

    def test_base_lmi_pass_still_rejects_pointer_stores(self):
        from repro.common.errors import ForbiddenCastError

        b = KernelBuilder("spill")
        h = b.malloc(512)
        slot = b.alloca(8)
        b.store(slot, h, width=8)
        b.ret()
        with pytest.raises(ForbiddenCastError):
            run_lmi_pass(b.module())

    def test_base_lmi_without_extension_trusts_forged_word(self):
        """Motivates the extension: without the shadow, a forged spill
        re-enters the lifecycle with whatever extent it claims."""
        result = GpuExecutor(_spill_module(tamper=True), LmiMechanism()).launch({})
        # The forged pointer dereference is a real violation...
        assert result.oracle_violated
        # ...and base LMI does not catch it (the forged extent passes).
        assert not result.detected

    def test_registry_exposes_extension(self):
        from repro.mechanisms import create_mechanism

        assert isinstance(
            create_mechanism("lmi-inmem"), LmiInMemoryPointerMechanism
        )
