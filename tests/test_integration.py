"""End-to-end scenarios taken directly from the paper's narrative."""

import pytest

from repro.common.errors import SpatialViolation, TemporalViolation
from repro.compiler import CmpKind, IRType, KernelBuilder, run_lmi_pass
from repro.exec import GpuExecutor
from repro.mechanisms import BaselineMechanism, GPUShieldMechanism, LmiMechanism


class TestMindControlAttack:
    """Section IV-D: a stack-buffer overflow inside one thread rewrites
    frame data beyond the buffer (the basis of ROP on GPUs).  Region-
    granular schemes miss it; LMI's per-buffer extent catches it."""

    @staticmethod
    def _module(payload_words=16):
        b = KernelBuilder("mind_control", params=[("input", IRType.PTR),
                                                  ("n", IRType.I64)])
        buf = b.alloca(256, name="frame_buf")
        i = b.alloca(8, name="i")
        b.store(i, 0, width=8)
        b.jump("copy")
        b.new_block("copy")
        iv = b.load(i, width=8)
        cond = b.cmp(CmpKind.LT, iv, b.param("n"))
        b.branch(cond, "body", "done")
        b.new_block("body")
        src = b.ptradd(b.param("input"), b.mul(iv, 4))
        dst = b.ptradd(buf, b.mul(iv, 4))  # no bounds check in source!
        b.store(dst, b.load(src, width=4), width=4)
        b.store(i, b.add(iv, 1), width=8)
        b.jump("copy")
        b.new_block("done")
        b.ret()
        module = b.module()
        run_lmi_pass(module)
        return module

    def _attack(self, mechanism, words):
        module = self._module()
        executor = GpuExecutor(module, mechanism)
        payload = executor.host_alloc(4096)
        return executor.launch({"input": payload, "n": words})

    def test_benign_input_passes_everywhere(self):
        for mechanism in (BaselineMechanism(), GPUShieldMechanism(),
                          LmiMechanism()):
            result = self._attack(mechanism, words=64)  # fits in 256 B
            assert result.completed
            assert not result.oracle_violated

    def test_malicious_input_smashes_frame_on_baseline(self):
        result = self._attack(BaselineMechanism(), words=80)  # 320 B
        assert result.completed  # silently corrupted
        assert result.oracle_violated

    def test_gpushield_misses_in_frame_smash(self):
        result = self._attack(GPUShieldMechanism(), words=80)
        assert result.false_negative  # stays inside the local region

    def test_lmi_stops_the_attack(self):
        result = self._attack(LmiMechanism(), words=80)
        assert isinstance(result.violation, SpatialViolation)
        assert result.true_positive


class TestDelayedTermination:
    """Figure 14: the canonical one-past-the-end loop must NOT fault."""

    @staticmethod
    def _module(deref_after=False):
        # 256 bytes is an exact power of two, so the rounded LMI buffer
        # equals the request and one-past-the-end really crosses the
        # extent boundary (with e.g. 64 bytes the 256-byte rounding
        # would legitimately swallow the off-by-one).
        b = KernelBuilder("walker")
        start = b.malloc(256, name="arr")  # 64 ints
        end = b.ptradd(start, 256, name="end")  # one past the end!
        p = b.alloca(8, name="pslot")  # loop variable kept in a slot
        # NOTE: storing the pointer in a slot is exactly the in-memory
        # pointer LMI forbids; model the loop with an index instead.
        b.store(p, 0, width=8)
        b.jump("head")
        b.new_block("head")
        iv = b.load(p, width=8)
        cond = b.cmp(CmpKind.LT, iv, 64)
        b.branch(cond, "body", "exit")
        b.new_block("body")
        slot = b.ptradd(start, b.mul(iv, 4))
        b.store(slot, b.add(b.load(slot, width=4), 1), width=4)
        b.store(p, b.add(iv, 1), width=8)
        b.jump("head")
        b.new_block("exit")
        if deref_after:
            b.load(end, width=4)  # actually touch one-past-the-end
        b.ret()
        module = b.module()
        run_lmi_pass(module)
        return module

    def test_loop_exits_without_fault(self):
        result = GpuExecutor(self._module(), LmiMechanism()).launch({})
        assert result.completed
        assert not result.oracle_violated

    def test_one_past_the_end_pointer_is_poisoned_not_trapped(self):
        """Computing `end` clears its extent (OCU) but raises nothing."""
        module = self._module(deref_after=False)
        mechanism = LmiMechanism()
        result = GpuExecutor(module, mechanism).launch({})
        assert result.completed
        assert mechanism.ocu.stats.overflows >= 1  # `end` was poisoned

    def test_dereferencing_the_poisoned_pointer_faults(self):
        module = self._module(deref_after=True)
        result = GpuExecutor(module, LmiMechanism()).launch({})
        assert isinstance(result.violation, SpatialViolation)


class TestFigure11Semantics:
    """The paper's temporal-safety code listing, line for line."""

    def test_full_listing(self):
        b = KernelBuilder("fig11")
        a = b.malloc(16, name="A")          # int* A = malloc(4*sizeof int)
        b.load(a, width=4)                  # B = A[0]: safe
        c = b.ptradd(a, 4, name="C")        # C = A + 1
        b.free(a)                           # free(A): A invalidated
        b.load(c, width=4)                  # G = C[0]: UNSAFE but missed
        b.ret()
        module = b.module()
        run_lmi_pass(module)
        result = GpuExecutor(module, LmiMechanism()).launch({})
        # The copied pointer keeps its extent: no detection...
        assert not result.detected
        # ...but the access is genuinely unsafe.
        assert result.oracle_violated

    def test_original_pointer_faults_after_free(self):
        b = KernelBuilder("fig11b")
        a = b.malloc(16, name="A")
        b.free(a)
        b.load(a, width=4)                  # D = A[0]: Error
        b.ret()
        module = b.module()
        run_lmi_pass(module)
        result = GpuExecutor(module, LmiMechanism()).launch({})
        assert isinstance(result.violation, TemporalViolation)

    def test_derived_from_invalidated_pointer_faults(self):
        b = KernelBuilder("fig11c")
        a = b.malloc(16, name="A")
        b.free(a)
        e = b.ptradd(a, 4, name="E")        # E = A + 1 (after free)
        b.load(e, width=4)                  # F = E[0]: Error
        b.ret()
        module = b.module()
        run_lmi_pass(module)
        result = GpuExecutor(module, LmiMechanism()).launch({})
        assert result.detected


class TestPerThreadHeapIsolation:
    """Figure 3: warp threads allocate different sizes concurrently;
    each thread's buffer is individually protected."""

    def test_variable_size_allocations_per_thread(self):
        b = KernelBuilder("varalloc")
        tid = b.thread_idx()
        size = b.mul(b.add(tid, 1), 256)  # thread t allocates 256*(t+1)
        h = b.malloc(size)
        b.store(h, tid, width=4)
        b.free(h)
        b.ret()
        module = b.module()
        run_lmi_pass(module)
        executor = GpuExecutor(module, LmiMechanism(), block_threads=8)
        result = executor.launch({})
        assert result.completed
        assert not result.oracle_violated

    def test_one_thread_overflowing_is_caught(self):
        b = KernelBuilder("one_bad")
        tid = b.thread_idx()
        h = b.malloc(256)
        cond = b.cmp(CmpKind.EQ, tid, 3)
        b.branch(cond, "evil", "good")
        b.new_block("evil")
        b.store(b.ptradd(h, 256), 666, width=4)
        b.ret()
        b.new_block("good")
        b.store(h, tid, width=4)
        b.ret()
        module = b.module()
        run_lmi_pass(module)
        executor = GpuExecutor(module, LmiMechanism(), block_threads=8)
        result = executor.launch({})
        assert isinstance(result.violation, SpatialViolation)
        assert result.violation.thread == 3


class TestSharedMemoryWorkflow:
    """A realistic tiled kernel using static shared memory."""

    def test_tile_copy_kernel(self):
        b = KernelBuilder("tiles", params=[("src", IRType.PTR),
                                           ("dst", IRType.PTR)],
                          shared_arrays=[("tile", 256)])
        tid = b.thread_idx()
        offset = b.mul(tid, 4)
        tile_slot = b.ptradd(b.shared("tile"), offset)
        b.store(tile_slot, b.load(b.ptradd(b.param("src"), offset), width=4),
                width=4)
        b.barrier()
        b.store(b.ptradd(b.param("dst"), offset),
                b.load(tile_slot, width=4), width=4)
        b.ret()
        module = b.module()
        run_lmi_pass(module)
        executor = GpuExecutor(module, LmiMechanism(), block_threads=32)
        src = executor.host_alloc(256)
        dst = executor.host_alloc(256)
        raw_src = executor.mechanism.translate(src)
        for i in range(32):
            executor.memory.store(raw_src + 4 * i, i * 11, 4)
        result = executor.launch({"src": src, "dst": dst})
        assert result.completed
        raw_dst = executor.mechanism.translate(dst)
        assert [executor.memory.load(raw_dst + 4 * i, 4) for i in range(32)] == [
            i * 11 for i in range(32)
        ]
