"""Tests for the virtual ISA and 128-bit microcode (paper VI-B)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError, MemorySpace
from repro.isa import (
    HINT_A_BIT,
    HINT_S_BIT,
    MICROCODE_BITS,
    Instruction,
    OpCategory,
    Opcode,
    decode,
    encode,
    hint_bits_available,
    opcode_from_code,
    opcode_from_mnemonic,
    reserved_bits_for_cc,
)
from repro.isa.microcode import control_of


class TestOpcodes:
    def test_memory_opcodes_carry_spaces(self):
        assert Opcode.LDG.space is MemorySpace.GLOBAL
        assert Opcode.STS.space is MemorySpace.SHARED
        assert Opcode.LDL.space is MemorySpace.LOCAL

    def test_only_int_alu_is_ocu_eligible(self):
        assert Opcode.IADD.info.ocu_eligible
        assert Opcode.LEA.info.ocu_eligible
        assert not Opcode.FADD.info.ocu_eligible
        assert not Opcode.LDG.info.ocu_eligible

    def test_lookup_by_code_roundtrip(self):
        for op in Opcode:
            assert opcode_from_code(op.info.code) is op

    def test_lookup_by_mnemonic(self):
        assert opcode_from_mnemonic("iadd") is Opcode.IADD

    def test_unknown_code_rejected(self):
        with pytest.raises(ConfigurationError):
            opcode_from_code(0xFFF)

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(ConfigurationError):
            opcode_from_mnemonic("HCF")

    def test_categories(self):
        assert Opcode.IADD.category is OpCategory.INT_ALU
        assert Opcode.LDG.category is OpCategory.LOAD
        assert Opcode.STG.category is OpCategory.STORE
        assert Opcode.BRA.category is OpCategory.CONTROL
        assert Opcode.MALLOC.category is OpCategory.SPECIAL

    def test_codes_are_unique(self):
        codes = [op.info.code for op in Opcode]
        assert len(codes) == len(set(codes))


class TestInstructionValidation:
    def test_hint_on_fp_rejected(self):
        with pytest.raises(ConfigurationError):
            Instruction(Opcode.FADD, hint_activate=True)

    def test_too_many_sources_rejected(self):
        with pytest.raises(ConfigurationError):
            Instruction(Opcode.IADD, srcs=(1, 2, 3, 4))

    def test_bad_hint_select_rejected(self):
        with pytest.raises(ConfigurationError):
            Instruction(Opcode.IADD, hint_select=2)

    def test_asm_rendering(self):
        instr = Instruction(
            Opcode.IADD, dst=4, srcs=(4, 5), hint_activate=True, hint_select=1
        )
        text = instr.asm()
        assert text.startswith("IADD R4, R4, R5;")
        assert "A S=1" in text


class TestMicrocode:
    def test_word_is_128_bits(self):
        word = encode(Instruction(Opcode.NOP))
        assert 0 <= word.raw < (1 << MICROCODE_BITS)

    def test_hint_bits_at_27_and_28(self):
        instr = Instruction(Opcode.IADD, dst=4, srcs=(4,), hint_activate=True,
                            hint_select=1)
        word = encode(instr)
        assert (word.raw >> HINT_A_BIT) & 1 == 1
        assert (word.raw >> HINT_S_BIT) & 1 == 1
        bare = encode(Instruction(Opcode.IADD, dst=4, srcs=(4,)))
        assert (bare.raw >> HINT_A_BIT) & 1 == 0

    def test_control_field_roundtrip(self):
        word = encode(Instruction(Opcode.NOP), control=0x1234)
        assert control_of(word) == 0x1234

    def test_decode_reads_hints(self):
        instr = Instruction(Opcode.IADD, dst=4, srcs=(4, 5),
                            hint_activate=True, hint_select=1)
        word = encode(instr)
        assert word.hint_activate
        assert word.hint_select == 1

    @given(
        st.sampled_from([Opcode.IADD, Opcode.MOV, Opcode.IMUL, Opcode.SHL]),
        st.integers(min_value=0, max_value=254),
        st.lists(st.integers(min_value=0, max_value=254), max_size=3),
        st.integers(min_value=0, max_value=(1 << 40) - 1),
        st.booleans(),
        st.integers(min_value=0, max_value=1),
    )
    def test_roundtrip(self, opcode, dst, srcs, imm, activate, select):
        instr = Instruction(
            opcode,
            dst=dst,
            srcs=tuple(srcs),
            imm=imm,
            hint_activate=activate,
            hint_select=select,
        )
        assert decode(encode(instr)) == instr

    def test_raw_out_of_range_rejected(self):
        from repro.isa import MicrocodeWord

        with pytest.raises(ConfigurationError):
            MicrocodeWord(raw=1 << 128)


class TestReservedBits:
    """Paper: 14 reserved bits on CC 7.0-7.2, 13 on CC 7.5-9.0."""

    @pytest.mark.parametrize("cc,expected", [(7.0, 14), (7.2, 14), (7.5, 13), (8.6, 13), (9.0, 13)])
    def test_reserved_counts(self, cc, expected):
        assert reserved_bits_for_cc(cc) == expected

    def test_out_of_range_cc_rejected(self):
        with pytest.raises(ConfigurationError):
            reserved_bits_for_cc(6.1)

    def test_hint_bits_fit_everywhere(self):
        for cc in (7.0, 7.5, 8.0, 9.0):
            assert hint_bits_available(cc)
