"""Tests for the executable kernel corpus: numerics under every
mechanism, plus the section XII-B feasibility reproduction."""

import pytest

from repro.exec import GpuExecutor
from repro.experiments.feasibility_study import run_feasibility_study
from repro.mechanisms import create_mechanism
from repro.workloads import kernels

MECHANISMS = ["baseline", "lmi", "gpushield", "cucatch", "gmod", "memcheck"]


def _fill(executor, pointer, values, width=4):
    raw = executor.mechanism.translate(pointer)
    for index, value in enumerate(values):
        executor.memory.store(raw + width * index, value, width)
    return raw


def _read(executor, pointer, count, width=4):
    raw = executor.mechanism.translate(pointer)
    return [executor.memory.load(raw + width * i, width) for i in range(count)]


class TestVectorAdd:
    @pytest.mark.parametrize("mechanism", MECHANISMS)
    def test_numerics_under_every_mechanism(self, mechanism):
        executor = GpuExecutor(
            kernels.vector_add(), create_mechanism(mechanism), block_threads=16
        )
        a = executor.host_alloc(1024)
        b = executor.host_alloc(1024)
        c = executor.host_alloc(1024)
        _fill(executor, a, range(16))
        _fill(executor, b, [100 * i for i in range(16)])
        result = executor.launch({"a": a, "b": b, "c": c})
        assert result.completed, result.violation
        assert _read(executor, c, 16) == [101 * i for i in range(16)]


class TestSaxpy:
    def test_numerics(self):
        executor = GpuExecutor(
            kernels.saxpy(), create_mechanism("lmi"), block_threads=8
        )
        x = executor.host_alloc(256)
        y = executor.host_alloc(256)
        _fill(executor, x, [1, 2, 3, 4, 5, 6, 7, 8])
        _fill(executor, y, [10] * 8)
        result = executor.launch({"alpha": 3, "x": x, "y": y})
        assert result.completed
        assert _read(executor, y, 8) == [13, 16, 19, 22, 25, 28, 31, 34]


class TestTiledReverse:
    @pytest.mark.parametrize("mechanism", ["baseline", "lmi", "cucatch"])
    def test_reverse_through_shared(self, mechanism):
        executor = GpuExecutor(
            kernels.tiled_reverse(), create_mechanism(mechanism),
            block_threads=32,
        )
        src = executor.host_alloc(256)
        dst = executor.host_alloc(256)
        _fill(executor, src, range(32))
        result = executor.launch({"src": src, "dst": dst})
        assert result.completed, result.violation
        assert _read(executor, dst, 32) == list(reversed(range(32)))


class TestReductionTree:
    """Exercises the phase-stepped barrier semantics hardest."""

    @pytest.mark.parametrize("mechanism", ["baseline", "lmi"])
    def test_sum_of_first_32(self, mechanism):
        executor = GpuExecutor(
            kernels.reduction_tree(), create_mechanism(mechanism),
            block_threads=32,
        )
        data = executor.host_alloc(1024)
        out = executor.host_alloc(256)
        _fill(executor, data, range(1, 33))
        result = executor.launch({"data": data, "out": out})
        assert result.completed, result.violation
        assert _read(executor, out, 1) == [sum(range(1, 33))]

    def test_multiple_blocks(self):
        executor = GpuExecutor(
            kernels.reduction_tree(), create_mechanism("lmi"),
            block_threads=32, grid_blocks=2,
        )
        data = executor.host_alloc(1024)
        out = executor.host_alloc(256)
        _fill(executor, data, [1] * 32)
        result = executor.launch({"data": data, "out": out})
        assert result.completed
        assert _read(executor, out, 1) == [32]


class TestNwDiagonal:
    def test_score_update(self):
        executor = GpuExecutor(
            kernels.nw_diagonal(), create_mechanism("lmi"), block_threads=16
        )
        scores = executor.host_alloc(256)
        _fill(executor, scores, [5] * 16)
        result = executor.launch({"scores": scores})
        assert result.completed
        assert _read(executor, scores, 16) == [5 + t + 1 for t in range(16)]


class TestBfsFrontier:
    def test_marks_neighbours_of_frontier_nodes(self):
        executor = GpuExecutor(
            kernels.bfs_frontier(), create_mechanism("lmi"), block_threads=8
        )
        adj = executor.host_alloc(256)
        visited = executor.host_alloc(256)
        frontier = executor.host_alloc(256)
        _fill(executor, adj, [(t + 1) % 8 for t in range(8)])
        _fill(executor, frontier, [1, 0, 0, 1, 0, 0, 0, 0])
        result = executor.launch(
            {"adj": adj, "visited": visited, "frontier": frontier}
        )
        assert result.completed
        marks = _read(executor, visited, 8)
        assert marks[1] == 1 and marks[4] == 1  # neighbours of 0 and 3
        assert sum(marks) == 2


class TestPerThreadScratch:
    @pytest.mark.parametrize("mechanism", ["baseline", "lmi", "memcheck"])
    def test_heap_churn_per_thread(self, mechanism):
        executor = GpuExecutor(
            kernels.per_thread_scratch(), create_mechanism(mechanism),
            block_threads=4,
        )
        out = executor.host_alloc(256)
        result = executor.launch({"out": out})
        assert result.completed, result.violation
        # acc(t) = sum over i in 0..3 of (i + t) = 6 + 4t
        assert _read(executor, out, 4, width=8) == [6, 10, 14, 18]

    def test_no_leaks(self):
        executor = GpuExecutor(
            kernels.per_thread_scratch(), create_mechanism("lmi"),
            block_threads=4,
        )
        out = executor.host_alloc(256)
        executor.launch({"out": out})
        heap_live = [
            r for r in executor.tracker.live_records if r.space.value == "heap"
        ]
        assert heap_live == []


class TestFeasibilityStudy:
    """Reproduces section XII-B: the corpus needs no source changes."""

    def test_corpus_is_fully_feasible(self):
        study = run_feasibility_study(include_control=False)
        assert study.clean_modules == study.total_modules
        assert study.total_modules == len(kernels.KERNEL_CORPUS)

    def test_control_kernel_is_flagged(self):
        study = run_feasibility_study(include_control=True)
        assert study.clean_modules == study.total_modules - 1
        control = study.reports[-1]
        assert len(control.inttoptr_sites) == 1
        assert len(control.ptrtoint_sites) == 1
        assert len(control.pointer_store_sites) == 1

    def test_table_renders(self):
        text = run_feasibility_study().format_table()
        assert "vector_add" in text
        assert "control_bad" in text
