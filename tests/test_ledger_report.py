"""Tests for the run ledger, regression gate, and HTML report.

Covers the persistence layer the perf trajectory rides on:

* JSONL ledger round-trips, schema stamping, malformed-line and
  unknown-schema tolerance, ``REPRO_LEDGER`` resolution;
* :func:`check_regressions` — green on a fresh ledger, red on an
  injected synthetic regression, median-robust against one outlier;
* the HTML report is fully self-contained (no network fetches) and
  embeds sparklines, overhead budget and failure callouts;
* the ``repro report`` CLI exit codes: 0 clean, 1 on ``--check``
  regression, 2 on usage errors.
"""

from __future__ import annotations

import json
import os
import re

import pytest

from repro.cli import main as cli_main
from repro.telemetry.ledger import (
    LEDGER_ENV,
    LEDGER_MAX_MB_ENV,
    LEDGER_SCHEMA,
    RunLedger,
    default_ledger_path,
    git_sha,
    ledger_max_bytes,
    make_record,
    merge_ledgers,
)
from repro.telemetry.report import (
    REPORT_SUMMARY_SCHEMA,
    bisect_regressions,
    build_html,
    build_summary,
    check_regressions,
    gateable_series,
    latest_fabric_counters,
    latest_phase_attribution,
    latest_serve_stats,
    load_bench_documents,
    sparkline_svg,
    write_report,
)


# ----------------------------------------------------------------------
# Ledger persistence


class TestRunLedger:
    def test_round_trip_and_schema_stamp(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "ledger.jsonl"))
        ledger.record(
            "benchmark",
            "sim_throughput",
            config={"fast": True},
            counters={"records": 1000},
            metrics={"throughput": 2.5e6},
            wall_seconds=1.25,
            sha="abc1234",
        )
        ledger.record("experiment", "fig12", metrics={"throughput": 3.0e6})
        records = ledger.read()
        assert [r["name"] for r in records] == ["sim_throughput", "fig12"]
        assert all(r["schema"] == LEDGER_SCHEMA for r in records)
        assert records[0]["git_sha"] == "abc1234"
        assert records[0]["metrics"]["throughput"] == 2.5e6
        assert records[0]["wall_seconds"] == 1.25
        assert ledger.names() == ["sim_throughput", "fig12"]
        assert ledger.series("fig12") == [3.0e6]

    def test_malformed_and_foreign_lines_are_skipped(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = RunLedger(str(path))
        ledger.record("benchmark", "a", metrics={"throughput": 1.0})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("{torn json\n")
            handle.write(json.dumps({"schema": "other/v9", "name": "x"}))
            handle.write("\n\n")
        ledger.record("benchmark", "a", metrics={"throughput": 2.0})
        assert ledger.series("a") == [1.0, 2.0]
        assert ledger.names() == ["a"]

    def test_missing_file_reads_empty(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "never-written.jsonl"))
        assert ledger.read() == []
        assert ledger.names() == []

    def test_append_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "ledger.jsonl"
        RunLedger(str(path)).record("benchmark", "b")
        assert path.exists()

    def test_env_overrides_default_path(self, monkeypatch, tmp_path):
        override = str(tmp_path / "elsewhere.jsonl")
        monkeypatch.setenv(LEDGER_ENV, override)
        assert default_ledger_path() == override
        assert RunLedger().path == override
        monkeypatch.delenv(LEDGER_ENV)
        assert default_ledger_path().endswith("ledger.jsonl")

    def test_make_record_stamps_sha_and_timestamp(self):
        record = make_record("experiment", "fig4", sha="deadbee")
        assert record["git_sha"] == "deadbee"
        assert re.fullmatch(
            r"\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}Z", record["created_at"]
        )

    def test_git_sha_in_repo_or_unknown(self):
        sha = git_sha()
        assert sha == "unknown" or re.fullmatch(r"[0-9a-f]{4,40}", sha)

    def test_phases_round_trip(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "l.jsonl"))
        ledger.record(
            "experiment", "fig12",
            phases={"sim": 1.23456789, "compile": 0.5},
        )
        record = ledger.read()[0]
        assert record["phases"] == {"sim": 1.234568, "compile": 0.5}


# ----------------------------------------------------------------------
# Size-based rotation


class TestLedgerRotation:
    def _fill(self, ledger, count, name="series"):
        for index in range(count):
            ledger.record(
                "benchmark", name,
                metrics={"throughput": float(index)},
                config={"pad": "x" * 64},
            )

    def test_rotation_keeps_newest_records(self, monkeypatch, tmp_path):
        # ~300 B/record; cap the file at 4 KiB => keep <= 2 KiB.
        monkeypatch.setenv(LEDGER_MAX_MB_ENV, str(4 / 1024))
        path = tmp_path / "l.jsonl"
        ledger = RunLedger(str(path))
        self._fill(ledger, 40)
        assert path.stat().st_size <= 4096
        values = ledger.series("series")
        # Newest survive, oldest were compacted away, order preserved.
        assert values == sorted(values)
        assert values[-1] == 39.0
        assert 0 < len(values) < 40

    def test_rotation_drops_malformed_lines(self, monkeypatch, tmp_path):
        monkeypatch.setenv(LEDGER_MAX_MB_ENV, str(4 / 1024))
        path = tmp_path / "l.jsonl"
        ledger = RunLedger(str(path))
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{torn json\n" * 50)
        self._fill(ledger, 20)
        raw = path.read_text()
        assert "torn" not in raw
        assert ledger.series("series")  # survivors parse cleanly

    def test_zero_disables_rotation(self, monkeypatch, tmp_path):
        monkeypatch.setenv(LEDGER_MAX_MB_ENV, "0")
        assert ledger_max_bytes() == 0
        path = tmp_path / "l.jsonl"
        ledger = RunLedger(str(path))
        self._fill(ledger, 40)
        assert len(ledger.series("series")) == 40

    def test_invalid_env_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv(LEDGER_MAX_MB_ENV, "lots")
        assert ledger_max_bytes() == 64 * 1024 * 1024
        monkeypatch.delenv(LEDGER_MAX_MB_ENV)
        assert ledger_max_bytes() == 64 * 1024 * 1024

    def test_rotation_always_keeps_latest_record(
        self, monkeypatch, tmp_path
    ):
        # A cap smaller than one record must still keep the newest.
        monkeypatch.setenv(LEDGER_MAX_MB_ENV, str(64 / (1024 * 1024)))
        ledger = RunLedger(str(tmp_path / "l.jsonl"))
        self._fill(ledger, 3)
        values = ledger.series("series")
        assert values == [2.0]


# ----------------------------------------------------------------------
# Regression gate


def _seed_series(ledger, name, values):
    for value in values:
        ledger.record("benchmark", name, metrics={"throughput": value})


class TestCheckRegressions:
    def test_fresh_ledger_is_green(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "l.jsonl"))
        assert check_regressions(ledger) == []
        _seed_series(ledger, "sim", [100.0])
        assert check_regressions(ledger) == []  # < min_history

    def test_stable_series_passes(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "l.jsonl"))
        _seed_series(ledger, "sim", [100.0, 102.0, 98.0, 101.0])
        assert check_regressions(ledger) == []

    def test_injected_regression_fails(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "l.jsonl"))
        _seed_series(ledger, "sim", [100.0, 102.0, 98.0, 50.0])
        failures = check_regressions(ledger)
        assert len(failures) == 1
        assert failures[0].startswith("sim: throughput 50")
        assert "below the ledger median" in failures[0]

    def test_median_baseline_absorbs_one_outlier(self, tmp_path):
        # One absurdly fast historical run must not fail a normal run.
        ledger = RunLedger(str(tmp_path / "l.jsonl"))
        _seed_series(ledger, "sim", [100.0, 1000.0, 102.0, 99.0])
        assert check_regressions(ledger) == []

    def test_threshold_and_metric_are_configurable(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "l.jsonl"))
        for value in (10.0, 10.0, 9.0):
            ledger.record("benchmark", "s", metrics={"speedup": value})
        assert check_regressions(ledger, metric="speedup") == []
        assert check_regressions(
            ledger, metric="speedup", threshold=0.05
        ) != []


# ----------------------------------------------------------------------
# Machine-readable summary


class TestSummary:
    def test_gateable_series_requires_history(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "l.jsonl"))
        assert gateable_series(ledger) == []
        _seed_series(ledger, "young", [1.0, 2.0])
        assert gateable_series(ledger) == []  # 1 prior < min_history 2
        _seed_series(ledger, "old", [1.0, 2.0, 3.0])
        assert gateable_series(ledger) == ["old"]

    def test_build_summary_schema_and_series(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "l.jsonl"))
        _seed_series(ledger, "sim", [100.0, 102.0, 98.0, 50.0])
        _seed_series(ledger, "fresh", [10.0])
        summary = build_summary(ledger)
        assert summary["schema"] == REPORT_SUMMARY_SCHEMA
        assert summary["metric"] == "throughput"
        assert summary["gateable_series"] == ["sim"]
        assert summary["failure_count"] == 1
        sim = summary["series"]["sim"]
        assert sim["runs"] == 4 and sim["latest"] == 50.0
        assert sim["median_prior"] == 100.0
        assert sim["gated"] and sim["regressed"]
        fresh = summary["series"]["fresh"]
        assert fresh["median_prior"] is None
        assert not fresh["gated"] and not fresh["regressed"]

    def test_summary_carries_overhead_and_phases(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "l.jsonl"))
        ledger.record(
            "experiment", "fig12",
            metrics={"throughput": 1.0},
            phases={"sim": 2.0, "compile": 0.5},
        )
        ledger.record(
            "experiment", "fig12",
            metrics={"throughput": 1.0},
            phases={"sim": 3.0, "export": 0.25},
        )
        overhead = {"overhead_fraction": 0.01, "budget_fraction": 0.05}
        summary = build_summary(
            ledger, {"BENCH_sim": {"telemetry_overhead": overhead}}
        )
        # Latest record per series wins; phases merge across series.
        assert summary["phases"] == {"export": 0.25, "sim": 3.0}
        assert summary["telemetry_overhead"] == overhead

    def test_latest_phase_attribution_sums_series(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "l.jsonl"))
        ledger.record("experiment", "fig12", phases={"sim": 2.0})
        ledger.record("experiment", "fig13", phases={"sim": 1.0})
        ledger.record("run", "experiments", phases={"export": 0.5})
        assert latest_phase_attribution(ledger) == {
            "export": 0.5, "sim": 3.0,
        }

    def test_serve_block_round_trips_into_summary(self, tmp_path):
        """A record's serve block survives the ledger verbatim and the
        summary keeps the latest block per series, whole."""
        ledger = RunLedger(str(tmp_path / "l.jsonl"))
        stale = {"hit_rate": 0.1, "requests_per_second": 10.0}
        fresh = {
            "hit_rate": 0.9,
            "requests_per_second": 2400.5,
            "batch_occupancy": 6.0,
            "latency_ms": {"p50": 0.7, "p99": 42.0},
        }
        ledger.record("benchmark", "serve_throughput", serve=stale)
        ledger.record("benchmark", "serve_throughput", serve=fresh)
        ledger.record("benchmark", "other", metrics={"throughput": 1.0})
        [record] = [
            r for r in ledger.read() if r.get("serve") == fresh
        ]
        assert record["name"] == "serve_throughput"
        assert latest_serve_stats(ledger) == {"serve_throughput": fresh}
        summary = build_summary(ledger)
        assert summary["serve"] == {"serve_throughput": fresh}
        # Records without a serve block simply don't carry the key.
        assert all(
            "serve" not in r for r in ledger.read() if r["name"] == "other"
        )

    def test_serve_section_renders_in_html(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "l.jsonl"))
        ledger.record(
            "benchmark",
            "serve_throughput",
            serve={
                "hit_rate": 0.85,
                "requests_per_second": 1234.5,
                "batch_occupancy": 5.5,
                "latency_ms": {"p50": 1.2, "p99": 50.0},
            },
        )
        html_text, _failures = build_html(ledger)
        assert "Serving plane" in html_text
        assert "serve_throughput" in html_text
        assert "1,234.5" in html_text


# ----------------------------------------------------------------------
# HTML report


class TestReportHtml:
    def _ledger(self, tmp_path, values=(100.0, 102.0, 98.0)):
        ledger = RunLedger(str(tmp_path / "l.jsonl"))
        _seed_series(ledger, "sim_throughput", values)
        return ledger

    def test_report_is_self_contained(self, tmp_path):
        html_text, failures = build_html(self._ledger(tmp_path))
        assert failures == []
        assert "<!DOCTYPE html>" in html_text
        assert "<style>" in html_text
        assert '<svg class="spark"' in html_text
        # No network fetches of any kind.
        assert "http://" not in html_text.replace(
            "http://www.w3.org/2000/svg", ""
        )
        assert "https://" not in html_text
        assert "<script" not in html_text
        assert "<link" not in html_text
        assert 'src="' not in html_text

    def test_report_renders_overhead_budget(self, tmp_path):
        bench_docs = {
            "BENCH_sim": {
                "models": {
                    "lmi": {
                        "columnar_records_per_second": 2_000_000,
                        "geomean_speedup": 12.5,
                    },
                },
                "telemetry_overhead": {
                    "overhead_fraction": 0.021,
                    "budget_fraction": 0.05,
                    "sample": "1/1024",
                },
            }
        }
        html_text, _ = build_html(self._ledger(tmp_path), bench_docs)
        assert "Telemetry overhead" in html_text
        assert "2.10%" in html_text and "5% budget" in html_text
        assert "1/1024" in html_text

    def test_report_flags_regression(self, tmp_path):
        ledger = self._ledger(tmp_path, values=(100.0, 102.0, 98.0, 40.0))
        html_text, failures = build_html(ledger)
        assert failures
        assert "Regressions detected" in html_text
        assert "regressed" in html_text

    def test_write_report_creates_dirs(self, tmp_path):
        out = tmp_path / "nested" / "report.html"
        path, failures = write_report(str(out), self._ledger(tmp_path))
        assert out.exists() and failures == []
        assert path == str(out)

    def test_load_bench_documents_skips_garbage(self, tmp_path):
        (tmp_path / "BENCH_good.json").write_text('{"a": 1}')
        (tmp_path / "BENCH_bad.json").write_text("{torn")
        (tmp_path / "BENCH_list.json").write_text("[1, 2]")
        (tmp_path / "unrelated.json").write_text('{"b": 2}')
        docs = load_bench_documents(str(tmp_path))
        assert docs == {"BENCH_good": {"a": 1}}

    def test_sparkline_svg_shapes(self):
        assert sparkline_svg([]) == ""
        single = sparkline_svg([5.0])
        assert "<polyline" in single and "<circle" in single
        multi = sparkline_svg([1.0, 3.0, 2.0])
        assert multi.count("<circle") == 1


# ----------------------------------------------------------------------
# CLI exit codes


class TestReportCli:
    def test_clean_ledger_exits_zero(self, tmp_path, capsys):
        ledger = tmp_path / "ledger.jsonl"
        _seed_series(RunLedger(str(ledger)), "sim", [100.0, 101.0, 99.0])
        out = tmp_path / "report.html"
        assert cli_main([
            "report", "--ledger", str(ledger),
            "--out", str(out), "--check",
        ]) == 0
        assert out.exists()
        assert "--check passed" in capsys.readouterr().out

    def test_injected_regression_exits_one_with_check(
        self, tmp_path, capsys
    ):
        ledger = tmp_path / "ledger.jsonl"
        _seed_series(
            RunLedger(str(ledger)), "sim", [100.0, 101.0, 99.0, 40.0]
        )
        out = tmp_path / "report.html"
        argv = ["report", "--ledger", str(ledger), "--out", str(out)]
        # Without --check the regression is reported but not fatal.
        assert cli_main(argv) == 0
        assert "REGRESSION" in capsys.readouterr().out
        assert cli_main(argv + ["--check"]) == 1
        printed = capsys.readouterr().out
        assert "REGRESSION" in printed and "--check failed" in printed

    def test_check_with_thin_ledger_skips_cleanly(self, tmp_path, capsys):
        # Empty ledger, and one with too little history: both exit 0
        # and say explicitly that there was nothing to gate.
        out = tmp_path / "report.html"
        empty = tmp_path / "empty.jsonl"
        assert cli_main([
            "report", "--ledger", str(empty),
            "--out", str(out), "--check",
        ]) == 0
        assert "--check skipped" in capsys.readouterr().out
        thin = tmp_path / "thin.jsonl"
        _seed_series(RunLedger(str(thin)), "sim", [100.0, 101.0])
        assert cli_main([
            "report", "--ledger", str(thin),
            "--out", str(out), "--check",
        ]) == 0
        printed = capsys.readouterr().out
        assert "--check skipped" in printed
        assert "nothing to gate" in printed

    def test_json_summary_flag(self, tmp_path, capsys):
        ledger = tmp_path / "ledger.jsonl"
        _seed_series(RunLedger(str(ledger)), "sim", [100.0, 101.0, 99.0])
        out = tmp_path / "report.html"
        summary_path = tmp_path / "summary.json"
        assert cli_main([
            "report", "--ledger", str(ledger), "--out", str(out),
            "--json", str(summary_path),
        ]) == 0
        assert "JSON summary" in capsys.readouterr().out
        summary = json.loads(summary_path.read_text())
        assert summary["schema"] == REPORT_SUMMARY_SCHEMA
        assert summary["series"]["sim"]["runs"] == 3
        assert summary["failure_count"] == 0

    def test_json_summary_reports_regression(self, tmp_path, capsys):
        ledger = tmp_path / "ledger.jsonl"
        _seed_series(
            RunLedger(str(ledger)), "sim", [100.0, 101.0, 99.0, 40.0]
        )
        summary_path = tmp_path / "summary.json"
        assert cli_main([
            "report", "--ledger", str(ledger),
            "--out", str(tmp_path / "r.html"),
            "--json", str(summary_path),
        ]) == 0
        capsys.readouterr()
        summary = json.loads(summary_path.read_text())
        assert summary["failure_count"] == 1
        assert summary["series"]["sim"]["regressed"] is True

    def test_usage_errors_exit_two(self, capsys):
        assert cli_main(["report", "--threshold", "nope"]) == 2
        assert cli_main(["report", "--threshold", "5"]) == 2
        assert cli_main(["report", "--ledger"]) == 2
        assert cli_main(["report", "--bogus"]) == 2
        assert cli_main(["frobnicate"]) == 2
        capsys.readouterr()

    def test_help_paths(self, capsys):
        assert cli_main(["--help"]) == 0
        assert cli_main(["report", "--help"]) == 0
        assert cli_main([]) == 2
        printed = capsys.readouterr().out
        assert "repro report" in printed

    def test_bench_dir_defaults_to_ledger_dir(self, tmp_path, capsys):
        ledger = tmp_path / "ledger.jsonl"
        _seed_series(RunLedger(str(ledger)), "sim", [10.0, 11.0])
        (tmp_path / "BENCH_x.json").write_text('{"score": 7}')
        out = tmp_path / "report.html"
        assert cli_main(
            ["report", "--ledger", str(ledger), "--out", str(out)]
        ) == 0
        assert "1 benchmark documents" in capsys.readouterr().out
        assert "BENCH_x" in out.read_text()


# ----------------------------------------------------------------------
# Segmented (commit-anchored) ledger mode


def _stamp(hour: int) -> str:
    return f"2026-08-01T{hour:02d}:00:00Z"


class TestSegmentedLedger:
    def test_dir_path_selects_segment_mode(self, tmp_path):
        assert RunLedger(str(tmp_path / "segs") + os.sep).segmented
        existing = tmp_path / "already-there"
        existing.mkdir()
        assert RunLedger(str(existing)).segmented
        assert not RunLedger(str(tmp_path / "flat.jsonl")).segmented

    def test_writers_get_private_segments(self, tmp_path):
        store = str(tmp_path / "segs") + os.sep
        first, second = RunLedger(store), RunLedger(store)
        first.record("benchmark", "a", metrics={"throughput": 1.0})
        second.record("benchmark", "a", metrics={"throughput": 2.0})
        segments = [
            entry for entry in os.listdir(store)
            if entry.startswith("seg-") and entry.endswith(".jsonl")
        ]
        assert len(segments) == 2  # no two writers share a file
        assert sorted(first.series("a")) == [1.0, 2.0]

    def test_read_unions_segments_in_timestamp_order(self, tmp_path):
        store = str(tmp_path / "segs") + os.sep
        early_writer, late_writer = RunLedger(store), RunLedger(store)
        late_writer.record(
            "benchmark", "a", metrics={"throughput": 3.0},
            created_at=_stamp(9),
        )
        early_writer.record(
            "benchmark", "a", metrics={"throughput": 1.0},
            created_at=_stamp(7),
        )
        late_writer.record(
            "benchmark", "a", metrics={"throughput": 2.0},
            created_at=_stamp(8),
        )
        assert RunLedger(store).series("a") == [1.0, 2.0, 3.0]

    def test_missing_dir_reads_empty(self, tmp_path):
        assert RunLedger(str(tmp_path / "never") + os.sep).read() == []


class TestMergeLedgers:
    def _flat(self, path, values, sha="aaa0001", start_hour=1):
        ledger = RunLedger(str(path))
        for offset, value in enumerate(values):
            ledger.record(
                "benchmark", "sim", metrics={"throughput": value},
                sha=sha, created_at=_stamp(start_hour + offset),
            )
        return ledger

    def test_merge_is_ordered_and_idempotent(self, tmp_path):
        a = self._flat(tmp_path / "a.jsonl", [2.0], start_hour=2)
        b = self._flat(tmp_path / "b.jsonl", [1.0], start_hour=1)
        dest = str(tmp_path / "merged.jsonl")
        added, total = merge_ledgers([a.path, b.path], dest)
        assert (added, total) == (2, 2)
        # Timestamp order wins over source order.
        assert RunLedger(dest).series("sim") == [1.0, 2.0]
        added, total = merge_ledgers([a.path, b.path], dest)
        assert (added, total) == (0, 2)  # idempotent

    def test_merge_dedupes_identical_records(self, tmp_path):
        record = make_record(
            "benchmark", "sim", metrics={"throughput": 5.0},
            sha="aaa0001", created_at=_stamp(1),
        )
        for name in ("a.jsonl", "b.jsonl"):
            RunLedger(str(tmp_path / name)).append(dict(record))
        dest = str(tmp_path / "merged.jsonl")
        added, total = merge_ledgers(
            [str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")], dest
        )
        assert (added, total) == (1, 1)

    def test_merge_from_segment_dir_preserves_metadata(self, tmp_path):
        store = str(tmp_path / "segs") + os.sep
        RunLedger(store).record(
            "benchmark", "sim", metrics={"throughput": 7.0},
            sha="cafe123", created_at=_stamp(3),
        )
        dest = str(tmp_path / "merged.jsonl")
        assert merge_ledgers([store], dest) == (1, 1)
        merged = RunLedger(dest).read()[0]
        assert merged["git_sha"] == "cafe123"
        assert merged["created_at"] == _stamp(3)

    def test_merge_cli_round_trip(self, tmp_path, capsys):
        self._flat(tmp_path / "a.jsonl", [1.0, 2.0])
        self._flat(tmp_path / "b.jsonl", [3.0], start_hour=5)
        dest = str(tmp_path / "merged.jsonl")
        assert cli_main([
            "ledger", "merge", str(tmp_path / "a.jsonl"),
            str(tmp_path / "b.jsonl"), "--out", dest,
        ]) == 0
        printed = capsys.readouterr().out
        assert "merged 2 source(s)" in printed
        assert "3 new record(s), 3 total" in printed
        assert len(RunLedger(dest).series("sim")) == 3

    def test_merge_cli_usage_errors(self, tmp_path, capsys):
        assert cli_main(["ledger", "merge"]) == 2
        assert cli_main(["ledger", "frobnicate"]) == 2
        assert cli_main([
            "ledger", "merge", str(tmp_path / "missing.jsonl"),
            "--out", str(tmp_path / "d.jsonl"),
        ]) == 2
        assert "source not found" in capsys.readouterr().out
        assert cli_main(["ledger", "--help"]) == 0


# ----------------------------------------------------------------------
# Commit bisection over ledger history


def _seed_commits(ledger, history):
    """*history* is ``[(sha, [values...]), ...]`` in commit order."""
    hour = 0
    for sha, values in history:
        for value in values:
            ledger.record(
                "benchmark", "sim", metrics={"throughput": value},
                sha=sha, created_at=_stamp(hour),
            )
            hour += 1


class TestBisectRegressions:
    def test_pins_first_regressing_commit(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "l.jsonl"))
        _seed_commits(ledger, [
            ("aaa0001", [100.0, 102.0]),
            ("bbb0002", [99.0]),
            ("ccc0003", [50.0, 52.0]),   # the culprit
            ("ddd0004", [51.0]),         # still slow, but not first
        ])
        culprits = bisect_regressions(ledger)
        assert list(culprits) == ["sim"]
        info = culprits["sim"]
        assert info["sha"] == "ccc0003"
        assert info["baseline"] == pytest.approx(100.0)
        assert info["value"] == pytest.approx(51.0)
        assert info["drop_fraction"] == pytest.approx(0.49)
        assert info["prior_commits"] == 2

    def test_clean_history_has_no_culprit(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "l.jsonl"))
        _seed_commits(ledger, [
            ("aaa0001", [100.0]), ("bbb0002", [98.0]), ("ccc0003", [101.0]),
        ])
        assert bisect_regressions(ledger) == {}

    def test_median_absorbs_one_noisy_run_at_the_boundary(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "l.jsonl"))
        _seed_commits(ledger, [
            ("aaa0001", [100.0, 101.0]),
            ("bbb0002", [40.0, 99.0, 100.0]),  # one bad run, not a trend
        ])
        assert bisect_regressions(ledger) == {}

    def test_threshold_is_configurable(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "l.jsonl"))
        _seed_commits(ledger, [("a", [100.0]), ("b", [90.0])])
        assert bisect_regressions(ledger) == {}
        assert "sim" in bisect_regressions(ledger, threshold=0.05)

    def test_report_cli_prints_culprit(self, tmp_path, capsys):
        ledger = tmp_path / "ledger.jsonl"
        _seed_commits(RunLedger(str(ledger)), [
            ("aaa0001", [100.0, 101.0]), ("bbb0002", [50.0]),
        ])
        assert cli_main([
            "report", "--ledger", str(ledger),
            "--out", str(tmp_path / "r.html"), "--bisect",
        ]) == 0
        printed = capsys.readouterr().out
        assert "[bisect] sim: first regressed at commit bbb0002" in printed
        assert "50.2% drop" in printed

    def test_report_cli_bisect_clean(self, tmp_path, capsys):
        ledger = tmp_path / "ledger.jsonl"
        _seed_commits(RunLedger(str(ledger)), [("aaa0001", [100.0, 99.0])])
        assert cli_main([
            "report", "--ledger", str(ledger),
            "--out", str(tmp_path / "r.html"), "--bisect",
        ]) == 0
        assert "no commit-attributable regression" in (
            capsys.readouterr().out
        )


# ----------------------------------------------------------------------
# Fabric counters in the ledger and the JSON summary


class TestFabricInLedger:
    def test_latest_fabric_counters_sums_latest_per_series(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "l.jsonl"))
        ledger.record(
            "experiment", "fig12",
            fabric={"cells_skipped": 2, "cells_executed": 10},
        )
        ledger.record(
            "experiment", "fig12",
            fabric={"cells_skipped": 12, "cells_executed": 0},
        )
        ledger.record(
            "experiment", "fig13",
            fabric={"cells_skipped": 3, "cells_stolen": 1},
        )
        assert latest_fabric_counters(ledger) == {
            "cells_executed": 0, "cells_skipped": 15, "cells_stolen": 1,
        }

    def test_summary_carries_fabric_block(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "l.jsonl"))
        ledger.record(
            "experiment", "fig12",
            metrics={"throughput": 1.0},
            fabric={"cells_skipped": 12},
        )
        summary = build_summary(ledger)
        assert summary["fabric"] == {"cells_skipped": 12}
