"""Tests for pointer-liveness tracking (paper XII-C, Algorithm 1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError, TemporalViolation
from repro.compiler import KernelBuilder, run_lmi_pass
from repro.exec import GpuExecutor
from repro.liveness import LivenessTracker
from repro.mechanisms import LmiMechanism
from repro.pointer import PointerCodec


@pytest.fixture
def codec():
    return PointerCodec()


class TestMembershipTable:
    def test_register_then_live(self, codec):
        tracker = LivenessTracker(codec)
        pointer = codec.encode(0x40000, 1024)
        tracker.register(pointer)
        assert tracker.is_live(pointer)

    def test_deregister_kills(self, codec):
        tracker = LivenessTracker(codec)
        pointer = codec.encode(0x40000, 1024)
        tracker.register(pointer)
        tracker.deregister(pointer)
        assert not tracker.is_live(pointer)

    def test_copies_share_liveness(self, codec):
        """The UM bits are common to every copy — the whole point."""
        tracker = LivenessTracker(codec)
        pointer = codec.encode(0x40000, 1024)
        tracker.register(pointer)
        copy = pointer + 512
        assert tracker.is_live(copy)
        tracker.deregister(pointer)
        assert not tracker.is_live(copy)

    def test_um_uniqueness_across_buffers(self, codec):
        tracker = LivenessTracker(codec)
        a = codec.encode(0x40000, 1024)
        b = codec.encode(0x40400, 1024)
        tracker.register(a)
        assert tracker.is_live(a)
        assert not tracker.is_live(b)

    def test_different_sizes_same_slot_are_distinct(self, codec):
        tracker = LivenessTracker(codec)
        small = codec.encode(0x40000, 256)
        large = codec.encode(0x40000, 1024)
        tracker.register(small)
        assert tracker.is_live(small)
        assert not tracker.is_live(large)

    def test_invalid_pointer_is_ec_business(self, codec):
        tracker = LivenessTracker(codec)
        assert tracker.is_live(codec.invalidate(codec.encode(0x40000, 256)))

    def test_register_invalid_rejected(self, codec):
        tracker = LivenessTracker(codec)
        with pytest.raises(ConfigurationError):
            tracker.register(0x40000)

    def test_deregister_by_base(self, codec):
        tracker = LivenessTracker(codec)
        pointer = codec.encode(0x40000, 1024)
        tracker.register(pointer)
        tracker.deregister_by_base(0x40000, 1024)
        assert not tracker.is_live(pointer)

    def test_bad_page_size_rejected(self, codec):
        with pytest.raises(ConfigurationError):
            LivenessTracker(codec, page_size=3000)

    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1,
                    max_size=30))
    def test_register_deregister_is_a_set(self, slots, ):
        codec = PointerCodec()
        tracker = LivenessTracker(codec)
        pointers = {slot: codec.encode(slot * 1024, 1024) for slot in slots}
        for pointer in pointers.values():
            tracker.register(pointer)
        for slot, pointer in pointers.items():
            if slot % 2 == 0:
                tracker.deregister(pointer)
        for slot, pointer in pointers.items():
            assert tracker.is_live(pointer) == (slot % 2 == 1)


class TestPageInvalidationOpt:
    """Algorithm 1's pageInvalidOpt: big buffers own whole pages."""

    def test_large_buffers_skip_the_table(self, codec):
        tracker = LivenessTracker(codec, page_size=4096, page_invalidation=True)
        big = codec.encode(0x100000, 64 * 1024)
        tracker.register(big)
        assert tracker.stats.table_entries == 0  # no table entry
        assert tracker.is_live(big)

    def test_large_buffer_free_invalidates_pages(self, codec):
        tracker = LivenessTracker(codec, page_size=4096, page_invalidation=True)
        big = codec.encode(0x100000, 64 * 1024)
        tracker.register(big)
        tracker.deregister(big)
        assert not tracker.is_live(big)
        assert tracker.stats.invalidated_pages == 16

    def test_small_buffers_still_use_table(self, codec):
        tracker = LivenessTracker(codec, page_size=4096, page_invalidation=True)
        small = codec.encode(0x40000, 512)
        tracker.register(small)
        assert tracker.stats.table_entries == 1
        tracker.deregister(small)
        assert not tracker.is_live(small)

    def test_reallocation_revives_pages(self, codec):
        tracker = LivenessTracker(codec, page_size=4096, page_invalidation=True)
        big = codec.encode(0x100000, 64 * 1024)
        tracker.register(big)
        tracker.deregister(big)
        tracker.register(big)  # reuse of the same slot
        assert tracker.is_live(big)

    def test_table_stays_small_with_opt(self, codec):
        with_opt = LivenessTracker(codec, page_size=4096, page_invalidation=True)
        without = LivenessTracker(codec, page_size=4096)
        for slot in range(16):
            pointer = codec.encode(slot << 20, 1 << 20)
            with_opt.register(pointer)
            without.register(pointer)
        assert with_opt.stats.table_entries == 0
        assert without.stats.table_entries == 16


class TestEndToEndCopiedPointerUaf:
    """The section XII-C ablation: liveness tracking closes Fig. 11's gap."""

    @staticmethod
    def _module():
        b = KernelBuilder("uaf_copy")
        h = b.malloc(512)
        copy = b.ptradd(h, 4)
        b.free(h)
        b.load(copy, width=4)
        b.ret()
        module = b.module()
        run_lmi_pass(module)
        return module

    def test_missed_without_tracking(self):
        result = GpuExecutor(self._module(), LmiMechanism()).launch({})
        assert result.false_negative

    def test_caught_with_tracking(self):
        mechanism = LmiMechanism(liveness_tracking=True)
        result = GpuExecutor(self._module(), mechanism).launch({})
        assert isinstance(result.violation, TemporalViolation)
        assert result.true_positive
