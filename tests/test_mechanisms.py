"""Per-mechanism behaviour tests (semantics behind Table III)."""

import pytest

from repro.common.errors import (
    SpatialViolation,
    TemporalViolation,
)
from repro.compiler import IRType, KernelBuilder, run_lmi_pass
from repro.exec import GpuExecutor
from repro.mechanisms import (
    MECHANISMS,
    BaggyBoundsMechanism,
    CuCatchMechanism,
    GmodMechanism,
    GPUShieldMechanism,
    ImtMechanism,
    LmiMechanism,
    MemcheckMechanism,
    create_mechanism,
)


def _oob_kernel(offset):
    b = KernelBuilder("oob", params=[("data", IRType.PTR)])
    b.store(b.ptradd(b.param("data"), offset), 1, width=4)
    b.ret()
    module = b.module()
    run_lmi_pass(module)
    return module


def _launch(module, mechanism, allocs):
    executor = GpuExecutor(module, mechanism)
    args = {name: executor.host_alloc(size) for name, size in allocs}
    return executor.launch(args)


class TestRegistry:
    def test_all_mechanisms_instantiable(self):
        for name in MECHANISMS:
            assert create_mechanism(name).name == MECHANISMS[name].name

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            create_mechanism("magic")

    def test_expected_names_present(self):
        assert {"baseline", "lmi", "gpushield", "cucatch", "gmod",
                "clarmor", "memcheck", "baggy", "imt"} <= set(MECHANISMS)


class TestLmiMechanism:
    def test_detects_global_oob(self):
        result = _launch(_oob_kernel(1024), LmiMechanism(), [("data", 1024)])
        assert isinstance(result.violation, SpatialViolation)

    def test_rounded_slack_is_not_detected(self):
        """Baggy-granularity: bytes between requested and rounded size
        pass the check — inherent to pointer-aligned schemes."""
        result = _launch(_oob_kernel(1000), LmiMechanism(), [("data", 1000)])
        # 1000 rounds to 1024: offset 1000 is inside the rounded buffer.
        assert not result.detected
        assert result.oracle_violated  # the oracle still sees it

    def test_uaf_classified_temporal(self):
        b = KernelBuilder("uaf")
        h = b.malloc(256)
        b.free(h)
        b.load(h, width=4)
        b.ret()
        module = b.module()
        run_lmi_pass(module)
        result = GpuExecutor(module, LmiMechanism()).launch({})
        assert isinstance(result.violation, TemporalViolation)

    def test_stats_accumulate(self):
        mechanism = LmiMechanism()
        _launch(_oob_kernel(4), mechanism, [("data", 1024)])
        assert mechanism.stats.tagged_pointers >= 1
        assert mechanism.stats.checks >= 1

    def test_describe_mentions_liveness(self):
        assert LmiMechanism().describe() == "lmi"
        assert LmiMechanism(liveness_tracking=True).describe() == "lmi+liveness"

    def test_aligned_everywhere(self):
        mechanism = LmiMechanism()
        assert mechanism.aligned_global and mechanism.aligned_heap
        assert mechanism.aligned_stack and mechanism.aligned_shared


class TestGPUShield:
    def test_fine_grained_global(self):
        result = _launch(_oob_kernel(1024), GPUShieldMechanism(),
                         [("data", 1024)])
        assert result.detected

    def test_heap_is_one_coarse_chunk(self):
        b = KernelBuilder("heap")
        h1 = b.malloc(512)
        b.malloc(512)
        b.store(b.ptradd(h1, 4096), 1, width=4)  # inside heap region
        b.ret()
        module = b.module()
        run_lmi_pass(module)
        result = GpuExecutor(module, GPUShieldMechanism()).launch({})
        assert not result.detected
        assert result.oracle_violated

    def test_shared_unprotected(self):
        b = KernelBuilder("sh", shared_arrays=[("tile", 512)])
        b.store(b.ptradd(b.shared("tile"), 4096), 1, width=4)
        b.ret()
        module = b.module()
        run_lmi_pass(module)
        result = GpuExecutor(module, GPUShieldMechanism()).launch({})
        assert not result.detected

    def test_no_temporal_safety(self):
        b = KernelBuilder("noop", params=[("data", IRType.PTR)])
        b.load(b.param("data"), width=4)
        b.ret()
        module = b.module()
        run_lmi_pass(module)
        executor = GpuExecutor(module, GPUShieldMechanism())
        p = executor.host_alloc(1024)
        record = executor.host_record(p)
        stale = executor.host_free(p)
        result = executor.launch({"data": stale}, provenance={"data": record})
        assert not result.detected  # bounds entry never retired
        assert result.oracle_violated

    def test_metadata_traffic_counted(self):
        mechanism = GPUShieldMechanism()
        _launch(_oob_kernel(4), mechanism, [("data", 1024)])
        assert mechanism.stats.metadata_memory_accesses >= 1


class TestCuCatch:
    def test_fine_grained_global_and_retirement(self):
        result = _launch(_oob_kernel(1024), CuCatchMechanism(), [("data", 1024)])
        assert result.detected

    def test_heap_uncovered(self):
        b = KernelBuilder("heap")
        h = b.malloc(512)
        b.store(b.ptradd(h, 4096), 1, width=4)
        b.ret()
        module = b.module()
        run_lmi_pass(module)
        result = GpuExecutor(module, CuCatchMechanism()).launch({})
        assert not result.detected
        assert result.oracle_violated

    def test_copied_pointer_uaf_detected(self):
        """The tag travels with copies, unlike LMI's extent nullify."""
        b = KernelBuilder("noop", params=[("data", IRType.PTR)])
        b.load(b.param("data"), width=4)
        b.ret()
        module = b.module()
        run_lmi_pass(module)
        executor = GpuExecutor(module, CuCatchMechanism())
        p = executor.host_alloc(1024)
        record = executor.host_record(p)
        executor.host_free(p)
        result = executor.launch({"data": p}, provenance={"data": record})
        assert isinstance(result.violation, TemporalViolation)

    def test_cross_frame_pointer_loses_tag(self):
        b = KernelBuilder("xframe")
        buf = b.alloca(256)
        b.call("smash", [buf], returns_value=False)
        b.ret()
        f = b.device_function("smash", params=[("p", IRType.PTR)])
        f.store(f.ptradd(f.param("p"), 512), 1, width=4)
        f.ret()
        module = b.module()
        run_lmi_pass(module)
        result = GpuExecutor(module, CuCatchMechanism()).launch({})
        assert not result.detected
        assert result.oracle_violated

    def test_same_frame_stack_overflow_detected(self):
        b = KernelBuilder("frame")
        buf = b.alloca(256)
        b.store(b.ptradd(buf, 512), 1, width=4)
        b.ret()
        module = b.module()
        run_lmi_pass(module)
        result = GpuExecutor(module, CuCatchMechanism()).launch({})
        assert result.detected


class TestCanary:
    def test_adjacent_write_caught_at_kernel_end(self):
        result = _launch(_oob_kernel(1024), GmodMechanism(), [("data", 1024)])
        assert result.detected
        assert "canary" in str(result.violation)

    def test_adjacent_read_not_caught(self):
        b = KernelBuilder("oob_read", params=[("data", IRType.PTR)])
        b.load(b.ptradd(b.param("data"), 1024), width=4)
        b.ret()
        module = b.module()
        run_lmi_pass(module)
        result = _launch(module, GmodMechanism(), [("data", 1024)])
        assert not result.detected
        assert result.oracle_violated

    def test_non_adjacent_write_skips_canary(self):
        result = _launch(_oob_kernel(65536), GmodMechanism(), [("data", 1024)])
        assert not result.detected
        assert result.oracle_violated

    def test_padding_only_for_global(self):
        mechanism = GmodMechanism()
        from repro.common.errors import MemorySpace

        assert mechanism.padding(100, MemorySpace.GLOBAL) != (0, 0)
        assert mechanism.padding(100, MemorySpace.LOCAL) == (0, 0)

    def test_clarmor_shares_semantics(self):
        result = _launch(_oob_kernel(1024), create_mechanism("clarmor"),
                         [("data", 1024)])
        assert result.detected


class TestMemcheck:
    def test_detects_access_outside_all_allocations(self):
        result = _launch(_oob_kernel(65536), MemcheckMechanism(),
                         [("data", 1024)])
        assert isinstance(result.violation, SpatialViolation)

    def test_misses_overflow_into_live_neighbour(self):
        """Tripwire semantics: an address inside *some* live allocation
        passes, even when it is the wrong one."""
        b = KernelBuilder("neighbour", params=[("a", IRType.PTR), ("b", IRType.PTR)])
        b.store(b.ptradd(b.param("a"), 1024), 1, width=4)
        b.ret()
        module = b.module()
        run_lmi_pass(module)
        result = _launch(module, MemcheckMechanism(),
                         [("a", 1024), ("b", 65536)])
        assert not result.detected
        assert result.oracle_violated

    def test_detects_uaf(self):
        b = KernelBuilder("uaf")
        h = b.malloc(256)
        b.free(h)
        b.load(h, width=4)
        b.ret()
        module = b.module()
        run_lmi_pass(module)
        result = GpuExecutor(module, MemcheckMechanism()).launch({})
        assert isinstance(result.violation, TemporalViolation)


class TestBaggy:
    def test_detection_matches_lmi(self):
        for offset, expect in ((1024, True), (512, False)):
            result = _launch(_oob_kernel(offset), BaggyBoundsMechanism(),
                             [("data", 1024)])
            assert result.detected == expect

    def test_injected_instruction_accounting(self):
        mechanism = BaggyBoundsMechanism()
        _launch(_oob_kernel(4), mechanism, [("data", 1024)])
        assert mechanism.injected_instructions == mechanism.stats.checks * 5


class TestImt:
    def test_detects_global_oob_into_neighbour(self):
        b = KernelBuilder("neighbour", params=[("a", IRType.PTR), ("b", IRType.PTR)])
        b.store(b.ptradd(b.param("a"), 1024), 1, width=4)
        b.ret()
        module = b.module()
        run_lmi_pass(module)
        result = _launch(module, ImtMechanism(), [("a", 1024), ("b", 1024)])
        assert result.detected  # neighbour carries a different tag

    def test_uaf_caught_by_retagging(self):
        b = KernelBuilder("noop", params=[("data", IRType.PTR)])
        b.load(b.param("data"), width=4)
        b.ret()
        module = b.module()
        run_lmi_pass(module)
        executor = GpuExecutor(module, ImtMechanism(seed=1))
        p = executor.host_alloc(1024)
        record = executor.host_record(p)
        executor.host_free(p)
        result = executor.launch({"data": p}, provenance={"data": record})
        assert result.detected  # tags re-randomised on free (no alias here)

    def test_heap_unprotected(self):
        b = KernelBuilder("heap")
        h = b.malloc(512)
        b.store(b.ptradd(h, 8192), 1, width=4)
        b.ret()
        module = b.module()
        run_lmi_pass(module)
        result = GpuExecutor(module, ImtMechanism()).launch({})
        assert not result.detected
