"""Tests for the memory substrate: layout, sparse storage, tracker."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError, MemorySpace
from repro.memory import (
    GLOBAL_BASE,
    HEAP_BASE,
    LOCAL_BASE,
    SHARED_BASE,
    AllocationTracker,
    FieldLayout,
    SparseMemory,
    block_of_shared_address,
    local_window,
    region_bounds,
    shared_window,
    space_of,
    thread_of_local_address,
)


class TestLayout:
    def test_regions_are_disjoint(self):
        bounds = [region_bounds(s) for s in MemorySpace]
        bounds.sort()
        for (_, end), (start, _) in zip(bounds, bounds[1:]):
            assert end <= start

    def test_space_classification(self):
        assert space_of(GLOBAL_BASE + 100) is MemorySpace.GLOBAL
        assert space_of(HEAP_BASE + 100) is MemorySpace.HEAP
        assert space_of(SHARED_BASE + 100) is MemorySpace.SHARED
        assert space_of(LOCAL_BASE + 100) is MemorySpace.LOCAL
        assert space_of(0x100) is None

    def test_local_windows_disjoint_per_thread(self):
        assert local_window(1) - local_window(0) == 1 << 20

    def test_thread_recovery(self):
        assert thread_of_local_address(local_window(42) + 999) == 42

    def test_thread_recovery_rejects_other_regions(self):
        with pytest.raises(ConfigurationError):
            thread_of_local_address(GLOBAL_BASE)

    def test_shared_windows_per_block(self):
        assert block_of_shared_address(shared_window(3) + 5) == 3

    def test_negative_ids_rejected(self):
        with pytest.raises(ConfigurationError):
            local_window(-1)
        with pytest.raises(ConfigurationError):
            shared_window(-1)


class TestSparseMemory:
    def test_untouched_reads_zero(self):
        memory = SparseMemory()
        assert memory.read_bytes(0x123456, 8) == b"\x00" * 8

    def test_write_read_roundtrip(self):
        memory = SparseMemory()
        memory.write_bytes(0x1000, b"hello")
        assert memory.read_bytes(0x1000, 5) == b"hello"

    def test_cross_page_write(self):
        memory = SparseMemory()
        data = bytes(range(256)) * 40  # 10 KiB spans 3+ pages
        memory.write_bytes(0xFFA, data)
        assert memory.read_bytes(0xFFA, len(data)) == data

    def test_word_store_load_little_endian(self):
        memory = SparseMemory()
        memory.store(0x2000, 0x0102030405060708, 8)
        assert memory.read_bytes(0x2000, 1) == b"\x08"
        assert memory.load(0x2000, 8) == 0x0102030405060708

    def test_narrow_store_truncates(self):
        memory = SparseMemory()
        memory.store(0x2000, 0x1FF, 1)
        assert memory.load(0x2000, 1) == 0xFF

    def test_float_roundtrip(self):
        memory = SparseMemory()
        memory.store_f32(0x3000, 1.5)
        assert memory.load_f32(0x3000) == 1.5

    def test_fill_byte(self):
        memory = SparseMemory(fill_byte=0xAA)
        assert memory.read_bytes(0x999, 2) == b"\xaa\xaa"

    def test_bad_fill_byte_rejected(self):
        with pytest.raises(ConfigurationError):
            SparseMemory(fill_byte=256)

    def test_unmap_restores_fill(self):
        memory = SparseMemory()
        memory.write_bytes(0x10000, b"\x77" * 8192)
        memory.unmap(0x10000, 8192)
        assert memory.read_bytes(0x10000, 8192) == b"\x00" * 8192

    def test_unmap_partial_pages(self):
        memory = SparseMemory()
        memory.write_bytes(0x10000, b"\x77" * 100)
        memory.write_bytes(0x10800, b"\x66" * 100)
        memory.unmap(0x10010, 0x10)  # middle of one page
        assert memory.read_bytes(0x10000, 16) == b"\x77" * 16
        assert memory.read_bytes(0x10010, 16) == b"\x00" * 16

    def test_resident_accounting(self):
        memory = SparseMemory()
        assert memory.resident_pages == 0
        memory.store(0x1000, 1, 4)
        assert memory.resident_pages == 1
        assert memory.resident_bytes == 4096

    @given(
        st.integers(min_value=0, max_value=1 << 30),
        st.binary(min_size=1, max_size=512),
    )
    def test_roundtrip_property(self, address, data):
        memory = SparseMemory()
        memory.write_bytes(address, data)
        assert memory.read_bytes(address, len(data)) == data


class TestAllocationTracker:
    def test_alloc_and_find(self):
        tracker = AllocationTracker()
        record = tracker.on_alloc(0x1000, 256, MemorySpace.GLOBAL)
        assert tracker.find_live(0x1000) is record
        assert tracker.find_live(0x10FF) is record
        assert tracker.find_live(0x1100) is None

    def test_width_matters(self):
        tracker = AllocationTracker()
        tracker.on_alloc(0x1000, 256, MemorySpace.GLOBAL)
        assert tracker.find_live(0x10FC, 4) is not None
        assert tracker.find_live(0x10FD, 4) is None

    def test_free_removes_from_live(self):
        tracker = AllocationTracker()
        tracker.on_alloc(0x1000, 256, MemorySpace.GLOBAL)
        tracker.on_free(0x1000)
        assert tracker.find_live(0x1000) is None
        assert tracker.find_freed(0x1000) is not None

    def test_free_of_unknown_base_rejected(self):
        tracker = AllocationTracker()
        with pytest.raises(ConfigurationError):
            tracker.on_free(0x9999)

    def test_classify_oob(self):
        tracker = AllocationTracker()
        tracker.on_alloc(0x1000, 256, MemorySpace.GLOBAL)
        verdict = tracker.classify(0x2000)
        assert verdict.is_violation
        assert not verdict.use_after_free

    def test_classify_uaf(self):
        tracker = AllocationTracker()
        tracker.on_alloc(0x1000, 256, MemorySpace.HEAP)
        tracker.on_free(0x1000)
        verdict = tracker.classify(0x1010)
        assert verdict.is_violation
        assert verdict.use_after_free

    def test_intra_object_fields(self):
        tracker = AllocationTracker()
        fields = (FieldLayout("a", 0, 16), FieldLayout("b", 16, 16))
        tracker.on_alloc(0x1000, 32, MemorySpace.LOCAL, fields=fields)
        ok = tracker.classify(0x1004, expected_field="a")
        assert not ok.is_violation
        bad = tracker.classify(0x1014, expected_field="a")
        assert bad.intra_object_overflow
        assert bad.is_violation

    def test_field_overrunning_allocation_rejected(self):
        tracker = AllocationTracker()
        with pytest.raises(ConfigurationError):
            tracker.on_alloc(
                0x1000, 16, MemorySpace.LOCAL,
                fields=(FieldLayout("x", 8, 16),),
            )

    def test_provenance_overflow_into_neighbour(self):
        tracker = AllocationTracker()
        a = tracker.on_alloc(0x1000, 256, MemorySpace.GLOBAL)
        tracker.on_alloc(0x1100, 256, MemorySpace.GLOBAL)
        # Address is inside live buffer B, but provenance says A.
        verdict = tracker.classify_provenanced(0x1100, 4, a)
        assert verdict.is_violation
        assert not verdict.use_after_free

    def test_provenance_uaf_survives_reuse(self):
        tracker = AllocationTracker()
        a = tracker.on_alloc(0x1000, 256, MemorySpace.GLOBAL)
        tracker.on_free(0x1000)
        tracker.on_alloc(0x1000, 256, MemorySpace.GLOBAL)  # reuse
        verdict = tracker.classify_provenanced(0x1010, 4, a)
        assert verdict.use_after_free

    def test_provenance_none_falls_back(self):
        tracker = AllocationTracker()
        tracker.on_alloc(0x1000, 256, MemorySpace.GLOBAL)
        assert not tracker.classify_provenanced(0x1010, 4, None).is_violation

    def test_live_bytes(self):
        tracker = AllocationTracker()
        tracker.on_alloc(0x1000, 100, MemorySpace.GLOBAL)
        tracker.on_alloc(0x2000, 200, MemorySpace.GLOBAL)
        assert tracker.live_bytes() == 300
        tracker.on_free(0x1000)
        assert tracker.live_bytes() == 200

    @given(st.lists(st.integers(min_value=0, max_value=200), min_size=1,
                    max_size=40, unique=True))
    def test_find_live_matches_linear_scan(self, slots):
        tracker = AllocationTracker()
        for slot in slots:
            tracker.on_alloc(0x1000 + slot * 512, 256, MemorySpace.GLOBAL)
        for probe in range(0, 220 * 512, 997):
            address = 0x1000 + probe
            expected = None
            for record in tracker.live_records:
                if record.contains(address):
                    expected = record
            assert tracker.find_live(address) is expected
