"""Coverage for small public-API surfaces not exercised elsewhere."""

import pytest

from repro import __version__
from repro.common.errors import MemorySpace, ViolationKind
from repro.exec.result import LaunchResult, OracleEvent
from repro.mechanisms.base import Mechanism, MechanismStats
from repro.pointer import split_many, split_pointer


class TestPackageSurface:
    def test_version_string(self):
        assert __version__.count(".") == 2

    def test_top_level_reexports(self):
        import repro

        for name in ("GpuExecutor", "KernelBuilder", "LmiMechanism",
                     "PointerCodec", "run_lmi_pass", "MECHANISMS"):
            assert hasattr(repro, name), name


class TestLaunchResultPredicates:
    def _event(self):
        return OracleEvent(
            kind=ViolationKind.SPATIAL,
            address=0x40,
            width=4,
            thread=0,
            space=MemorySpace.GLOBAL,
        )

    def test_clean_run(self):
        result = LaunchResult(completed=True)
        assert not result.detected
        assert not result.oracle_violated
        assert not result.true_positive
        assert not result.false_positive
        assert not result.false_negative

    def test_true_positive(self):
        from repro.common.errors import SpatialViolation

        result = LaunchResult(
            completed=False,
            violation=SpatialViolation("x"),
            oracle_events=[self._event()],
        )
        assert result.true_positive
        assert not result.false_positive
        assert not result.false_negative

    def test_false_positive(self):
        from repro.common.errors import SpatialViolation

        result = LaunchResult(completed=False, violation=SpatialViolation("x"))
        assert result.false_positive
        assert not result.true_positive

    def test_false_negative(self):
        result = LaunchResult(completed=True, oracle_events=[self._event()])
        assert result.false_negative
        assert not result.detected


class TestRegisterHelpers:
    def test_split_many(self):
        pairs = split_many([0x1, 0x2_0000_0005])
        assert pairs[0].low == 1 and pairs[0].high == 0
        assert pairs[1].low == 5 and pairs[1].high == 2

    def test_split_pointer_masks_to_64_bits(self):
        pair = split_pointer((1 << 70) | 0x42)
        assert pair.value == 0x42


class TestMechanismBaseDefaults:
    """The base class must be a faithful do-nothing baseline."""

    def test_defaults_are_identity(self):
        mechanism = Mechanism()
        assert mechanism.tag_pointer(0x1000, 64, MemorySpace.GLOBAL) == 0x1000
        assert mechanism.translate(0x1234) == 0x1234
        assert mechanism.on_ptr_arith(0x1000, 0x1004, activated=True) == 0x1004
        assert mechanism.on_invalidate(0x1000) == 0x1000
        assert mechanism.on_call_boundary(0x1000) == 0x1000
        assert mechanism.on_pointer_load(0x1000, 0x2000) == 0x2000
        assert mechanism.padding(64, MemorySpace.GLOBAL) == (0, 0)
        mechanism.check_access(0x1000, 0x1000, 4, MemorySpace.GLOBAL)
        mechanism.on_kernel_end()  # no raise

    def test_stats_start_at_zero(self):
        stats = MechanismStats()
        assert (stats.checks, stats.tagged_pointers,
                stats.metadata_memory_accesses, stats.detections) == (0, 0, 0, 0)


class TestSpaceStrings:
    def test_memory_space_str(self):
        assert str(MemorySpace.GLOBAL) == "global"

    def test_violation_repr_contains_context(self):
        from repro.common.errors import SpatialViolation

        violation = SpatialViolation("x", address=0x42, thread=3,
                                     mechanism="m")
        text = repr(violation)
        assert "0x42" in text and "m" in text
