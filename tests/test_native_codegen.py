"""Per-cell native codegen suite.

:mod:`repro.sim.codegen` generates one specialized C kernel per
(timing-model, mechanism) cell and caches the compiled object on disk.
This suite locks the contracts the fast path depends on:

* **Spec determinism** — equal :class:`CellSpec`\\ s generate
  byte-identical sources (and therefore share one ``.so``); the
  probe-free mechanisms of one config all collapse to a single cell.
* **Observable fallbacks** — every refusal to run natively is counted
  on :data:`repro.sim.native.NATIVE_DIAG` with a machine-readable
  reason (``disabled``, ``no-toolchain``, ``custom-model``, …), and
  results stay correct either way.
* **Race-safe disk cache** — concurrent builds of one cell into a
  shared cache directory all succeed (per-key build lock + atomic
  publish), and warm loads never re-invoke the compiler.
* **Custom model coverage** — attribute-only :class:`TimingModel`
  subclasses ride the generated kernels (equivalence vs the locked
  reference, warm-state round-trip, >64-warp wide-mask cells), while
  hook-overriding subclasses fall back observably.
* **Batched FFI** — ``run_native_batch`` is result/state/event
  identical to sequential ``run_native`` at any thread count.
"""

from __future__ import annotations

import os
import threading

import pytest

from repro.common.config import DEFAULT_GPU_CONFIG
from repro.experiments.engine import model_factory
from repro.sim import SmSimulator, native_available
from repro.sim import codegen
from repro.sim.codegen import (
    CACHE_ENV,
    CODEGEN_STATS,
    CellSpec,
    CompiledCell,
    THREADS_ENV,
    generate_cell_source,
    load_cell,
    resolve_threads,
)
from repro.sim.native import (
    NATIVE_ENV,
    cell_spec_for,
    fallback_counts,
    run_native,
    run_native_batch,
)
from repro.sim.reference import ReferenceSmSimulator
from repro.sim.timing import LmiTiming, TimingModel
from repro.sim.core import SimStats
from repro.workloads import synthesize_trace


def _delta(before, after):
    """Reason → growth between two fallback_counts() snapshots."""
    return {
        reason: after[reason] - before.get(reason, 0)
        for reason in after
        if after[reason] != before.get(reason, 0)
    }


@pytest.fixture
def fresh_memo():
    """Isolate a test that repoints the cell cache or the toolchain."""
    codegen._reset_memo()
    yield
    codegen._reset_memo()


def _plan_for(simulator, trace):
    plan = simulator._fast_plan(trace)
    assert plan is not None, "expected the fast path"
    return plan


# ----------------------------------------------------------------------
# Spec determinism and cell sharing.


def test_equal_specs_generate_identical_source():
    spec = CellSpec(
        has_probes=True, l1_ways=4, l1_latency=30, l2_ways=24,
        l2_latency=200, dram_latency=350, line_cycles=4, tx_cycles=4,
        rc_ways=4,
    )
    twin = CellSpec(
        has_probes=True, l1_ways=4, l1_latency=30, l2_ways=24,
        l2_latency=200, dram_latency=350, line_cycles=4, tx_cycles=4,
        rc_ways=4,
    )
    assert generate_cell_source(spec) == generate_cell_source(twin)


def test_probe_free_mechanisms_share_one_cell():
    """baseline/lmi/baggy fold to the same kernel; gpushield differs."""
    trace = synthesize_trace("gaussian", warps=3, instructions_per_warp=120)
    specs = {}
    for mechanism in ("baseline", "lmi", "baggy", "gpushield"):
        sim = SmSimulator(DEFAULT_GPU_CONFIG, model_factory(mechanism))
        specs[mechanism] = cell_spec_for(sim, _plan_for(sim, trace))
    assert specs["baseline"] == specs["lmi"] == specs["baggy"]
    assert not specs["baseline"].has_probes
    assert specs["gpushield"].has_probes
    assert specs["gpushield"].rc_ways > 0


def test_latencies_fold_into_source():
    spec = CellSpec(
        has_probes=False, l1_ways=2, l1_latency=17, l2_ways=8,
        l2_latency=123, dram_latency=777, line_cycles=9, tx_cycles=5,
    )
    source = generate_cell_source(spec)
    for literal in ("17", "123", "777"):
        assert literal in source
    # The probe-free cell elides the RCache/metadata machinery
    # entirely instead of branching around it.
    assert "rc_tags" not in source


# ----------------------------------------------------------------------
# Observable fallbacks.


def test_disabled_fallback_is_counted(monkeypatch):
    monkeypatch.setenv(NATIVE_ENV, "0")
    trace = synthesize_trace("needle", warps=2, instructions_per_warp=100)
    sim = SmSimulator(DEFAULT_GPU_CONFIG, model_factory("lmi"))
    before = fallback_counts()
    result = sim.run(trace)
    grown = _delta(before, fallback_counts())
    assert grown.get("disabled", 0) >= 1
    want = ReferenceSmSimulator(
        DEFAULT_GPU_CONFIG, model_factory("lmi")
    ).run(trace)
    assert result.cycles == want.cycles


def test_no_toolchain_fallback_is_counted(monkeypatch, fresh_memo):
    monkeypatch.setattr(codegen, "_find_cc", lambda: None)
    trace = synthesize_trace("needle", warps=2, instructions_per_warp=100)
    sim = SmSimulator(DEFAULT_GPU_CONFIG, model_factory("baseline"))
    before = fallback_counts()
    result = sim.run(trace)
    grown = _delta(before, fallback_counts())
    assert grown.get("no-toolchain", 0) >= 1
    want = ReferenceSmSimulator(
        DEFAULT_GPU_CONFIG, model_factory("baseline")
    ).run(trace)
    assert result.cycles == want.cycles
    assert result.stats == want.stats


def test_custom_model_fallback_is_counted():
    class OpaqueTiming(TimingModel):
        name = "opaque"

        def extra_latency(self, instr, now):
            return 1

    sim = SmSimulator(DEFAULT_GPU_CONFIG, OpaqueTiming())
    trace = synthesize_trace("needle", warps=2, instructions_per_warp=100)
    before = fallback_counts()
    result = sim.run(trace)
    grown = _delta(before, fallback_counts())
    assert grown.get("custom-model", 0) >= 1
    want = ReferenceSmSimulator(DEFAULT_GPU_CONFIG, OpaqueTiming()).run(trace)
    assert result.cycles == want.cycles


# ----------------------------------------------------------------------
# Disk cache: atomic publish, build lock, warm loads.


def test_concurrent_builds_race_safely(tmp_path, monkeypatch, fresh_memo):
    if codegen._find_cc() is None:
        pytest.skip("no C toolchain")
    monkeypatch.setenv(CACHE_ENV, str(tmp_path))
    spec = CellSpec(
        has_probes=False, l1_ways=4, l1_latency=31, l2_ways=8,
        l2_latency=201, dram_latency=351, line_cycles=4, tx_cycles=4,
    )
    failures_before = CODEGEN_STATS.failures
    results = [None] * 6
    # _load_uncached bypasses the memo, so every thread races the
    # compiler for the same cache key; the per-key build lock plus
    # tmp-file + os.replace publish must keep them all coherent.
    threads = [
        threading.Thread(
            target=lambda i=i: results.__setitem__(
                i, codegen._load_uncached(spec)
            )
        )
        for i in range(len(results))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert all(isinstance(cell, CompiledCell) for cell in results)
    assert len({cell.digest for cell in results}) == 1
    assert os.path.exists(results[0].so_path)
    assert CODEGEN_STATS.failures == failures_before


def test_warm_load_never_recompiles(tmp_path, monkeypatch, fresh_memo):
    if codegen._find_cc() is None:
        pytest.skip("no C toolchain")
    monkeypatch.setenv(CACHE_ENV, str(tmp_path))
    spec = CellSpec(
        has_probes=True, l1_ways=4, l1_latency=32, l2_ways=8,
        l2_latency=202, dram_latency=352, line_cycles=4, tx_cycles=4,
        rc_ways=4,
    )
    compiles_before = CODEGEN_STATS.compiles
    first = load_cell(spec)
    assert isinstance(first, CompiledCell)
    assert CODEGEN_STATS.compiles > compiles_before
    # A fresh process (simulated by dropping the memo) must come up
    # from the .so on disk without touching the compiler.
    codegen._reset_memo()
    compiles_before = CODEGEN_STATS.compiles
    disk_hits_before = CODEGEN_STATS.disk_hits
    warm = load_cell(spec)
    assert isinstance(warm, CompiledCell)
    assert warm.digest == first.digest
    assert CODEGEN_STATS.compiles == compiles_before
    assert CODEGEN_STATS.disk_hits > disk_hits_before
    # Third load inside the same process is a pure memo hit.
    memo_before = CODEGEN_STATS.memo_hits
    assert load_cell(spec) is warm
    assert CODEGEN_STATS.memo_hits > memo_before


def test_resolve_threads_env_and_batch_clamp(monkeypatch):
    monkeypatch.setenv(THREADS_ENV, "4")
    assert resolve_threads(8) == 4
    assert resolve_threads(2) == 2
    assert resolve_threads(0) == 1
    monkeypatch.setenv(THREADS_ENV, "garbage")
    assert resolve_threads(8) == 1
    monkeypatch.setenv(THREADS_ENV, "auto")
    assert resolve_threads(1) == 1


# ----------------------------------------------------------------------
# Custom TimingModel subclasses through the generated kernels.


class RelabeledLmi(LmiTiming):
    """Attribute-only subclass: keeps every decode-relevant hook."""

    name = "lmi-relabeled"

    def __init__(self):
        super().__init__()
        self.runs_seen = 0  # extra bookkeeping must not break the key


def _native_or_skip():
    if not native_available():
        pytest.skip("no C toolchain for the native executor")


@pytest.mark.parametrize("warps", [5, 70], ids=["small-mask", "wide-mask"])
def test_custom_subclass_rides_generated_kernel(warps, monkeypatch):
    """An attribute-only subclass keeps the native path (both mask
    variants) and matches the reference cycle-for-cycle over warm
    runs."""
    _native_or_skip()
    monkeypatch.delenv(NATIVE_ENV, raising=False)
    assert RelabeledLmi().columnar_plan_key() == ("lmi", 3)
    trace = synthesize_trace(
        "gaussian", warps=warps, instructions_per_warp=60
    )
    sim = SmSimulator(DEFAULT_GPU_CONFIG, RelabeledLmi())
    ref = ReferenceSmSimulator(DEFAULT_GPU_CONFIG, RelabeledLmi())
    before = fallback_counts()
    for _ in range(2):  # second run replays against warm native state
        got = sim.run(trace)
        want = ref.run(trace)
        assert got.cycles == want.cycles
        assert got.stats == want.stats
    assert not _delta(before, fallback_counts())
    assert (sim.l1.stats.hits, sim.l1.stats.misses) == (
        ref.l1.stats.hits, ref.l1.stats.misses
    )
    assert (sim.l2.stats.hits, sim.l2.stats.misses) == (
        ref.l2.stats.hits, ref.l2.stats.misses
    )


def test_hook_override_falls_back_observably():
    class ShiftedLmi(LmiTiming):
        def extra_latency(self, instr, now):  # decode-relevant hook
            return super().extra_latency(instr, now) + 1

    assert ShiftedLmi().columnar_plan_key() is None
    sim = SmSimulator(DEFAULT_GPU_CONFIG, ShiftedLmi())
    trace = synthesize_trace("needle", warps=2, instructions_per_warp=80)
    before = fallback_counts()
    got = sim.run(trace)
    assert _delta(before, fallback_counts()).get("custom-model", 0) >= 1
    want = ReferenceSmSimulator(DEFAULT_GPU_CONFIG, ShiftedLmi()).run(trace)
    assert got.cycles == want.cycles


# ----------------------------------------------------------------------
# Batched FFI entry point.


def _prepare_requests(mechanisms, traces):
    requests = []
    for mechanism, trace in zip(mechanisms, traces):
        sim = SmSimulator(DEFAULT_GPU_CONFIG, model_factory(mechanism))
        plan = _plan_for(sim, trace)
        requests.append((sim, plan, SimStats(), [], 1, 0))
    return requests


@pytest.mark.parametrize("threads", [None, 2])
def test_batch_matches_sequential(threads, monkeypatch):
    """run_native_batch == [run_native(*r) for r in requests]: cycles,
    stats, cache state and sampled events, at any thread count."""
    _native_or_skip()
    monkeypatch.delenv(NATIVE_ENV, raising=False)
    mechanisms = ["baseline", "lmi", "gpushield", "baggy", "lmi", "gpushield"]
    names = ["gaussian", "needle", "LSTM", "bfs", "hotspot", "lud_cuda"]
    traces = [
        synthesize_trace(name, warps=4, instructions_per_warp=120)
        for name in names
    ]
    sequential = _prepare_requests(mechanisms, traces)
    batched = _prepare_requests(mechanisms, traces)
    want = [run_native(*request) for request in sequential]
    got = run_native_batch(batched, threads=threads)
    assert all(cycles is not None for cycles in want)
    assert got == want
    for (sim_a, _, stats_a, events_a, _, _), (
        sim_b, _, stats_b, events_b, _, _
    ) in zip(sequential, batched):
        assert stats_a == stats_b
        assert events_a == events_b
        assert (sim_a.l1.stats.hits, sim_a.l1.stats.misses) == (
            sim_b.l1.stats.hits, sim_b.l1.stats.misses
        )
        assert (sim_a.l2.stats.hits, sim_a.l2.stats.misses) == (
            sim_b.l2.stats.hits, sim_b.l2.stats.misses
        )
        assert sim_a.dram.channel_free_at == sim_b.dram.channel_free_at


def test_batch_counts_into_codegen_stats(monkeypatch):
    _native_or_skip()
    monkeypatch.delenv(NATIVE_ENV, raising=False)
    traces = [
        synthesize_trace("gaussian", warps=3, instructions_per_warp=80),
        synthesize_trace("needle", warps=3, instructions_per_warp=80),
    ]
    requests = _prepare_requests(["baseline", "lmi"], traces)
    calls_before = CODEGEN_STATS.batch_calls
    cells_before = CODEGEN_STATS.batch_cells
    cycles = run_native_batch(requests)
    assert all(value is not None for value in cycles)
    assert CODEGEN_STATS.batch_calls > calls_before
    assert CODEGEN_STATS.batch_cells >= cells_before + 2
