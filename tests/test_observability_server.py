"""Tests for the live observability plane: progress board, HTTP
server, SSE stream, ``repro top``.

Locks the contracts DESIGN.md ("Observability" → "Live plane")
promises:

* the :class:`ProgressBoard` job state machine (queued → running →
  done/failed), EWMA/ETA math, and the ``/progress`` snapshot schema;
* endpoint behavior — status codes, content types, ``/metrics``
  passing the Prometheus exposition lint, 404/400 paths;
* the SSE stream emits one ``event: progress`` frame per board
  change while a real (small) job grid runs;
* shutdown joins every thread the server created — no dangling
  threads after :meth:`ObservabilityServer.stop`;
* the server is **read-only** over telemetry: ``--metrics``/``--trace``
  exports are byte-identical with the server polling mid-run;
* the ``repro top`` renderer and its exit codes.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.cli import format_top, main as cli_main
from repro.experiments.engine import SimJob, run_sim_jobs
from repro.telemetry import (
    ObservabilityServer,
    PROGRESS,
    PROGRESS_SCHEMA,
    ProgressBoard,
    capture,
    chrome_trace,
    dumps,
    lint_prometheus,
    metrics_json,
    start_server,
)
from repro.telemetry.progress import DONE, FAILED, QUEUED, RUNNING
from repro.telemetry.server import (
    PROMETHEUS_CONTENT_TYPE,
    SERVE_ENV,
    port_from_env,
)


def _get(url: str, timeout: float = 5.0):
    """GET *url*; returns (status, content_type, body_bytes)."""
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return (
            response.status,
            response.headers.get("Content-Type"),
            response.read(),
        )


def _small_grid():
    return [
        SimJob(
            benchmark=benchmark,
            mechanism=mechanism,
            warps=2,
            instructions_per_warp=120,
        )
        for benchmark in ("gaussian", "needle")
        for mechanism in ("baseline", "lmi")
    ]


# ----------------------------------------------------------------------
# Progress board


class TestProgressBoard:
    def test_lifecycle_counts(self):
        board = ProgressBoard()
        assert board.job_queued("b", "m") is None  # inactive: no-op
        board.begin_run("unit", meta={"fast": True})
        ids = [board.job_queued("b", f"m{i}") for i in range(3)]
        assert all(ids)
        snap = board.snapshot()
        assert snap["run"]["queued"] == 3
        board.job_running(ids[0])
        board.job_finished(ids[0])
        board.job_running(ids[1])
        board.job_finished(ids[1], ok=False)
        snap = board.snapshot()
        assert snap["run"]["done"] == 1
        assert snap["run"]["failed"] == 1
        assert snap["run"]["queued"] == 1
        states = {j["id"]: j["state"] for j in snap["jobs"]}
        assert states[ids[0]] == DONE
        assert states[ids[1]] == FAILED
        assert states[ids[2]] == QUEUED
        board.end_run()
        assert not board.active
        assert board.snapshot()["run"]["status"] == "done"

    def test_transitions_are_idempotent_and_null_safe(self):
        board = ProgressBoard()
        board.begin_run("unit")
        job_id = board.job_queued("b", "m")
        board.job_running(None)
        board.job_finished(None)
        board.job_running("no-such-id")
        board.job_running(job_id)
        board.job_running(job_id)  # second transition ignored
        assert board.snapshot()["run"]["running"] == 1
        board.job_finished(job_id)
        board.job_finished(job_id)  # terminal states are sticky
        assert board.snapshot()["run"]["done"] == 1

    def test_ewma_and_eta(self):
        board = ProgressBoard()
        board.begin_run("unit")
        ids = [board.job_queued("b", f"m{i}") for i in range(4)]
        for job_id in ids[:2]:
            board.job_running(job_id)
            board.job_finished(job_id)
        run = board.snapshot()["run"]
        assert run["ewma_job_seconds"] is not None
        assert run["ewma_job_seconds"] >= 0
        # 2 queued, 0 running => eta = ewma * 2 / 1
        assert run["eta_seconds"] == pytest.approx(
            run["ewma_job_seconds"] * 2, rel=0.2, abs=1e-3
        )
        for job_id in ids[2:]:
            board.job_running(job_id)
            board.job_finished(job_id)
        assert board.snapshot()["run"]["eta_seconds"] == 0.0

    def test_retry_parks_job_back_in_queue(self):
        board = ProgressBoard()
        board.begin_run("unit")
        job_id = board.job_queued("b", "m")
        board.job_running(job_id)
        board.job_retry(job_id)
        snap = board.snapshot()
        assert snap["run"]["retries"] == 1
        assert snap["run"]["queued"] == 1 and snap["run"]["running"] == 0
        assert snap["jobs"][0]["retries"] == 1

    def test_snapshot_schema_and_job_bound(self):
        board = ProgressBoard()
        board.begin_run("unit")
        for index in range(10):
            board.job_queued("bench", f"m{index}")
        snap = board.snapshot(max_jobs=4)
        assert snap["schema"] == PROGRESS_SCHEMA
        assert snap["run"]["total"] == 10
        assert len(snap["jobs"]) == 4
        # All queued: queue order, next-to-run first.
        assert snap["jobs"][0]["id"].startswith("0:")
        assert set(snap["violations"]) == {
            "oracle.violations", "mechanism.detections", "ec.faults",
        }
        json.dumps(snap)  # JSON-serializable end to end
        # Interest order: running jobs lead even when a truncated
        # list would otherwise be all queued rows.
        board.job_running("5:bench:m5")
        board.job_running("9:bench:m9")
        board.job_finished("9:bench:m9")
        ids = [j["id"] for j in board.snapshot(max_jobs=4)["jobs"]]
        assert ids == ["5:bench:m5", "0:bench:m0", "1:bench:m1",
                       "2:bench:m2"]
        # Finished jobs trail, newest-first, once the list has room.
        ids = [j["id"] for j in board.snapshot()["jobs"]]
        assert ids[0] == "5:bench:m5" and ids[-1] == "9:bench:m9"

    def test_phase_recording_is_always_on(self):
        board = ProgressBoard()  # never begun: still records phases
        board.record_phase("sim", 1.0)
        board.record_phases({"sim": 0.5, "compile": 0.25})
        assert board.phase_totals() == {"sim": 1.5, "compile": 0.25}
        snap = board.snapshot()
        assert snap["phases"]["sim"] == {"seconds": 1.5, "count": 2}

    def test_wait_for_change_sees_versions(self):
        board = ProgressBoard()
        version = board.version
        same, changed = board.wait_for_change(version, timeout=0.05)
        assert same == version and not changed
        board.begin_run("unit")
        bumped, changed = board.wait_for_change(version, timeout=0.05)
        assert changed and bumped != version


# ----------------------------------------------------------------------
# Endpoints


@pytest.fixture()
def server():
    board = ProgressBoard()
    with capture() as t:
        t.registry.counter("sim.instructions", trace="unit").inc(42)
        srv = ObservabilityServer(0, telemetry=t, board=board)
        srv.start()
        try:
            yield srv
        finally:
            srv.stop()


class TestEndpoints:
    def test_port_zero_binds_ephemeral(self, server):
        assert server.port != 0
        assert server.url == f"http://127.0.0.1:{server.port}"
        assert server.running

    def test_metrics_lints_clean(self, server):
        status, content_type, body = _get(server.url + "/metrics")
        assert status == 200
        assert content_type == PROMETHEUS_CONTENT_TYPE
        text = body.decode("utf-8")
        assert "repro_sim_instructions" in text
        assert lint_prometheus(text) == []

    def test_healthz(self, server):
        status, content_type, body = _get(server.url + "/healthz")
        assert status == 200
        assert content_type.startswith("application/json")
        doc = json.loads(body)
        assert doc["status"] == "ok"
        assert doc["uptime_seconds"] >= 0
        assert doc["metrics"] >= 1
        assert set(doc["run"]) == {
            "name", "status", "total", "done", "failed",
        }

    def test_progress_snapshot_and_jobs_param(self, server):
        server.board.begin_run("unit")
        for index in range(6):
            server.board.job_queued("bench", f"m{index}")
        status, content_type, body = _get(
            server.url + "/progress?jobs=2"
        )
        assert status == 200
        assert content_type.startswith("application/json")
        doc = json.loads(body)
        assert doc["schema"] == PROGRESS_SCHEMA
        assert doc["run"]["total"] == 6
        assert len(doc["jobs"]) == 2

    def test_bad_jobs_param_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + "/progress?jobs=many")
        assert excinfo.value.code == 400

    def test_unknown_path_is_404_with_directory(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + "/nope")
        assert excinfo.value.code == 404
        doc = json.loads(excinfo.value.read())
        assert "/metrics" in doc["endpoints"]

    def test_start_twice_raises(self, server):
        with pytest.raises(RuntimeError):
            server.start()


# ----------------------------------------------------------------------
# Forensics endpoints: /trace, /logs, OpenMetrics negotiation


class TestForensicsEndpoints:
    @pytest.fixture(autouse=True)
    def _fresh_diagnostics(self):
        from repro.telemetry.log import LOG
        from repro.telemetry.tracectx import TRACES

        TRACES.clear()
        LOG.clear()
        yield
        TRACES.clear()
        LOG.clear()

    def test_trace_endpoints(self, server):
        from repro.telemetry.tracectx import TRACES

        TRACES.begin("rtx-" + "5" * 16, source="executed")
        TRACES.stage("rtx-" + "5" * 16, "sim", 0.010)
        TRACES.finish("rtx-" + "5" * 16, 0.012)
        status, content_type, body = _get(
            server.url + "/trace/rtx-" + "5" * 16
        )
        assert status == 200
        assert content_type.startswith("application/json")
        doc = json.loads(body)
        assert doc["complete"] is True
        assert [s["stage"] for s in doc["stages"]] == [
            "sim", "unattributed",
        ]
        status, _, body = _get(server.url + "/trace")
        listing = json.loads(body)
        assert listing["schema"] == "repro.telemetry.trace-list/v1"
        assert listing["count"] == 1
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + "/trace/rtx-" + "6" * 16)
        assert excinfo.value.code == 404

    def test_logs_endpoint_filters(self, server):
        from repro.telemetry.log import LOG

        LOG.info("boring")
        LOG.warning("spicy", trace_id="rtx-" + "7" * 16)
        status, _, body = _get(server.url + "/logs?level=warning")
        doc = json.loads(body)
        assert status == 200
        assert [r["event"] for r in doc["records"]] == ["spicy"]
        status, _, body = _get(
            server.url + "/logs?trace=rtx-" + "7" * 16
        )
        assert json.loads(body)["count"] == 1
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + "/logs?limit=many")
        assert excinfo.value.code == 400

    def test_404_directory_lists_forensics_endpoints(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + "/nope")
        doc = json.loads(excinfo.value.read())
        assert "/trace/<id>" in doc["endpoints"]
        assert "/logs" in doc["endpoints"]

    def test_openmetrics_negotiation_carries_exemplars(self):
        from repro.telemetry.server import OPENMETRICS_CONTENT_TYPE

        board = ProgressBoard()
        with capture() as t:
            hist = t.registry.histogram(
                "serve.latency_seconds", plane="unit"
            )
            hist.observe(0.25, trace_id="rtx-" + "8" * 16)
            with ObservabilityServer(0, telemetry=t, board=board) as srv:
                request = urllib.request.Request(
                    srv.url + "/metrics",
                    headers={"Accept": "application/openmetrics-text"},
                )
                with urllib.request.urlopen(request, timeout=5) as resp:
                    assert (
                        resp.headers.get("Content-Type")
                        == OPENMETRICS_CONTENT_TYPE
                    )
                    text = resp.read().decode("utf-8")
                assert '# {trace_id="rtx-' in text
                assert text.endswith("# EOF\n")
                assert text.count("# EOF") == 1
                # The classic exposition stays trace-free.
                _, content_type, body = _get(srv.url + "/metrics")
                assert content_type == PROMETHEUS_CONTENT_TYPE
                assert "rtx-" not in body.decode("utf-8")


# ----------------------------------------------------------------------
# SSE stream


class TestSseStream:
    def test_stream_emits_progress_events_during_grid(self):
        # The engine reports to the process-global board, so the
        # server must watch that one to see the grid's transitions.
        board = PROGRESS
        with capture() as t:
            with ObservabilityServer(0, telemetry=t, board=board) as srv:
                board.begin_run("sse-grid")
                events = []
                first_event = threading.Event()

                def consume():
                    # Exits on the terminal status frame end_run()
                    # forces, so the short grid cannot outrun us.
                    request = urllib.request.Request(
                        srv.url + "/progress/stream"
                    )
                    with urllib.request.urlopen(
                        request, timeout=10
                    ) as stream:
                        while True:
                            line = stream.readline()
                            if not line:
                                return
                            if not line.startswith(b"event: progress"):
                                continue
                            payload = stream.readline()
                            event = json.loads(
                                payload.decode()[len("data: "):]
                            )
                            events.append(event)
                            first_event.set()
                            if event["run"]["status"] in (
                                "done", "failed",
                            ):
                                return

                consumer = threading.Thread(target=consume, daemon=True)
                consumer.start()
                try:
                    # The stream's opening frame (version -1) arrives
                    # before any job runs — the grid below is observed.
                    assert first_event.wait(5)
                    results = run_sim_jobs(_small_grid(), n_jobs=1)
                finally:
                    board.end_run()
                consumer.join(10)
                assert not consumer.is_alive()
        assert len(results) == 4
        assert len(events) >= 2
        assert all(e["schema"] == PROGRESS_SCHEMA for e in events)
        # The stream saw the run progress: done counts are monotone
        # and the grid finished at least one job while we watched.
        dones = [e["run"]["done"] for e in events]
        assert dones == sorted(dones)
        assert any(e["run"]["total"] == 4 for e in events)

    def test_concurrent_sse_clients_all_observe_run(self):
        """Several simultaneous SSE consumers each see the whole run
        (per-connection handler threads must not starve each other)."""
        n_clients = 6
        board = PROGRESS
        with capture() as t:
            with ObservabilityServer(0, telemetry=t, board=board) as srv:
                board.begin_run("sse-fanout")
                finals = [None] * n_clients
                ready = threading.Barrier(n_clients + 1, timeout=10)

                def consume(slot):
                    request = urllib.request.Request(
                        srv.url + "/progress/stream"
                    )
                    with urllib.request.urlopen(
                        request, timeout=10
                    ) as stream:
                        ready.wait()
                        while True:
                            line = stream.readline()
                            if not line:
                                return
                            if not line.startswith(b"event: progress"):
                                continue
                            payload = stream.readline()
                            event = json.loads(
                                payload.decode()[len("data: "):]
                            )
                            finals[slot] = event
                            if event["run"]["status"] in (
                                "done", "failed",
                            ):
                                return

                consumers = [
                    threading.Thread(target=consume, args=(slot,), daemon=True)
                    for slot in range(n_clients)
                ]
                for consumer in consumers:
                    consumer.start()
                try:
                    ready.wait()  # every client is connected + streaming
                    results = run_sim_jobs(_small_grid(), n_jobs=1)
                finally:
                    board.end_run()
                for consumer in consumers:
                    consumer.join(10)
                assert not any(c.is_alive() for c in consumers)
        assert len(results) == 4
        # Every client independently observed the terminal frame with
        # the full job count — nobody got a torn or partial stream.
        assert all(f is not None for f in finals)
        assert all(f["run"]["status"] == "done" for f in finals)
        assert all(f["run"]["total"] == 4 for f in finals)
        assert all(f["run"]["done"] == 4 for f in finals)


# ----------------------------------------------------------------------
# Shutdown discipline


class TestShutdown:
    def test_stop_leaves_no_dangling_threads(self):
        baseline = set(threading.enumerate())
        board = ProgressBoard()
        srv = start_server(0, board=board)
        # Park an SSE client so a handler thread is alive at stop().
        opened = threading.Event()

        def park():
            try:
                request = urllib.request.Request(
                    srv.url + "/progress/stream"
                )
                with urllib.request.urlopen(request, timeout=10) as s:
                    opened.set()
                    while s.readline():
                        pass
            except (OSError, urllib.error.URLError):
                opened.set()

        client = threading.Thread(target=park, daemon=True)
        client.start()
        assert opened.wait(5)
        srv.stop()
        assert not srv.running
        client.join(5)
        leaked = [
            t for t in threading.enumerate()
            if t not in baseline and t is not client and t.is_alive()
        ]
        assert leaked == [], f"dangling threads: {leaked}"

    def test_stop_is_idempotent(self):
        srv = start_server(0)
        srv.stop()
        srv.stop()  # second stop is a no-op
        assert not srv.running

    def test_dropped_sse_client_releases_handler_thread(self):
        """A client that vanishes mid-stream must free its handler
        within about one keep-alive interval — the MSG_PEEK disconnect
        probe, not a failed write several frames later."""
        import socket
        import time as time_module

        board = ProgressBoard()
        srv = start_server(0, board=board)
        try:
            baseline = set(threading.enumerate())
            sock = socket.create_connection(
                ("127.0.0.1", srv.port), timeout=5
            )
            sock.sendall(
                b"GET /progress/stream HTTP/1.1\r\n"
                b"Host: localhost\r\n\r\n"
            )
            assert sock.recv(4096)  # headers (+ first frame) arrived
            handler_threads = [
                t for t in threading.enumerate() if t not in baseline
            ]
            assert handler_threads  # a handler is parked on the stream
            sock.close()
            deadline = time_module.monotonic() + 5.0
            while time_module.monotonic() < deadline:
                if not any(t.is_alive() for t in handler_threads):
                    break
                time_module.sleep(0.05)
            assert not any(t.is_alive() for t in handler_threads), (
                "SSE handler thread survived its client"
            )
        finally:
            srv.stop()


# ----------------------------------------------------------------------
# Read-only contract: byte-identical exports with the server watching


class TestByteIdentity:
    def _run_and_export(self, with_server: bool):
        with capture() as t:
            poller_stop = threading.Event()
            srv = None
            poller = None
            if with_server:
                # Watch the global board the engine reports to, so
                # live job state is really being snapshotted mid-run.
                board = PROGRESS
                srv = ObservabilityServer(0, telemetry=t, board=board)
                srv.start()
                board.begin_run("identity")

                def poll():
                    while not poller_stop.is_set():
                        try:
                            _get(srv.url + "/metrics", timeout=2)
                            _get(srv.url + "/progress", timeout=2)
                        except (OSError, urllib.error.URLError):
                            pass
                        poller_stop.wait(0.01)

                poller = threading.Thread(target=poll, daemon=True)
                poller.start()
            try:
                run_sim_jobs(_small_grid(), n_jobs=1)
                metrics = dumps(
                    metrics_json(t.registry, recorder=t.recorder)
                )
                trace = dumps(chrome_trace(t.tracer, t.recorder))
            finally:
                poller_stop.set()
                if poller is not None:
                    poller.join(5)
                if srv is not None:
                    srv.stop()
                if with_server:
                    PROGRESS.end_run()
        return metrics, trace

    def test_exports_identical_with_server_polling(self):
        plain = self._run_and_export(with_server=False)
        observed = self._run_and_export(with_server=True)
        assert plain[0] == observed[0]
        assert plain[1] == observed[1]


# ----------------------------------------------------------------------
# repro top


class TestReproTop:
    def _snapshot(self):
        return {
            "schema": PROGRESS_SCHEMA,
            "active": True,
            "run": {
                "name": "fig12", "status": "running",
                "meta": {"fast": True, "jobs": 4},
                "total": 16, "queued": 3, "running": 4,
                "done": 9, "failed": 0, "retries": 1,
                "uptime_seconds": 12.5, "ewma_job_seconds": 2.25,
                "jobs_per_second": 0.72, "eta_seconds": 21.9,
                "started_at": "2026-01-01T00:00:00Z",
            },
            "phases": {
                "sim": {"seconds": 30.0, "count": 9},
                "compile": {"seconds": 3.0, "count": 9},
            },
            "violations": {"oracle.violations": 2, "ec.faults": 0},
            "jobs": [
                {
                    "id": "8:bfs:lmi", "benchmark": "bfs",
                    "mechanism": "lmi", "state": RUNNING,
                    "phase": "sim", "retries": 1, "wall_seconds": 1.5,
                },
                {
                    "id": "7:bfs:baggy", "benchmark": "bfs",
                    "mechanism": "baggy", "state": QUEUED,
                    "phase": "", "retries": 0, "wall_seconds": None,
                },
            ],
        }

    def test_format_top_renders_everything(self):
        text = format_top(self._snapshot(), limit=12)
        assert "run fig12 — running" in text
        assert "9/16 done" in text
        assert "eta 21.9s" in text
        assert "sim 30.0s (91%)" in text
        assert "oracle.violations 2" in text
        assert "bfs/lmi (retry 1)" in text
        assert "running" in text and "queued" in text

    def test_format_top_limits_job_rows(self):
        snapshot = self._snapshot()
        snapshot["jobs"] = snapshot["jobs"] * 6  # 12 rows
        text = format_top(snapshot, limit=3)
        assert "... 9 more job(s)" in text

    def test_top_once_against_live_server(self, capsys):
        board = ProgressBoard()
        board.begin_run("live", meta={"jobs": 2})
        job_id = board.job_queued("bfs", "lmi")
        board.job_running(job_id)
        with ObservabilityServer(0, board=board) as srv:
            assert cli_main([
                "top", "--once", "--port", str(srv.port),
            ]) == 0
        printed = capsys.readouterr().out
        assert "run live — running" in printed
        assert "bfs/lmi" in printed

    def test_top_once_unreachable_exits_one(self, capsys):
        # Bind-then-close guarantees a dead port.
        srv = start_server(0)
        port = srv.port
        srv.stop()
        assert cli_main(["top", "--once", "--port", str(port)]) == 1
        assert "cannot reach" in capsys.readouterr().out

    def test_top_usage_errors(self, capsys):
        assert cli_main(["top", "--bogus"]) == 2
        assert cli_main(["top", "--port"]) == 2
        assert cli_main(["top", "--port", "nope"]) == 2
        assert cli_main(["top", "--once"]) == 2  # no server given
        assert cli_main(["top", "--help"]) == 0
        capsys.readouterr()


# ----------------------------------------------------------------------
# CLI / environment wiring


class TestServeWiring:
    def test_port_from_env(self, monkeypatch):
        monkeypatch.delenv(SERVE_ENV, raising=False)
        assert port_from_env() is None
        monkeypatch.setenv(SERVE_ENV, "9155")
        assert port_from_env() == 9155
        monkeypatch.setenv(SERVE_ENV, "not-a-port")
        with pytest.raises(ValueError):
            port_from_env()
        monkeypatch.setenv(SERVE_ENV, "70000")
        with pytest.raises(ValueError):
            port_from_env()

    def test_experiments_serve_flag_validation(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["fig4", "--serve", "nope"]) == 2
        assert "--serve expects a port" in capsys.readouterr().out
        assert main(["fig4", "--serve", "70000"]) == 2
        assert "[0, 65535]" in capsys.readouterr().out
        assert main(["fig4", "--serve"]) == 2
        assert "requires a PORT" in capsys.readouterr().out

    def test_experiments_run_with_ephemeral_server(self, capsys):
        from repro.experiments.__main__ import main

        baseline = set(threading.enumerate())
        assert main(["fig4", "--fast", "--serve", "0"]) == 0
        printed = capsys.readouterr().out
        assert "observability server at http://127.0.0.1:" in printed
        leaked = [
            t for t in threading.enumerate()
            if t not in baseline and t.is_alive()
        ]
        assert leaked == [], f"dangling threads: {leaked}"

    def test_invalid_env_port_fails_loudly(self, monkeypatch, capsys):
        from repro.experiments.__main__ import main

        monkeypatch.setenv(SERVE_ENV, "bogus")
        assert main(["fig4", "--fast"]) == 2
        assert SERVE_ENV in capsys.readouterr().out
