"""Tests for the Overflow Checking Unit (paper section VII)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import SimulationError
from repro.hardware import OverflowCheckingUnit
from repro.pointer import PointerCodec


@pytest.fixture
def codec():
    return PointerCodec()


@pytest.fixture
def ocu(codec):
    return OverflowCheckingUnit(codec)


class TestMaskGeneration:
    def test_mask_covers_um_and_extent_bits(self, ocu, codec):
        mask = ocu.address_mask(1)  # 256-byte buffer
        assert mask & 0xFF == 0  # modifiable bits excluded
        assert mask >> 8 == (1 << 56) - 1  # everything above included

    def test_mask_grows_with_extent(self, ocu):
        assert ocu.address_mask(2) == ocu.address_mask(1) & ~0x100

    def test_invalid_extent_masks_everything(self, ocu):
        assert ocu.address_mask(0) == (1 << 64) - 1


class TestOverflowDetection:
    def test_in_bounds_arithmetic_passes(self, ocu, codec):
        pointer = codec.encode(0x12345600, 256)
        result = ocu.check(pointer, pointer + 0x40)
        assert not result.overflow
        assert result.value == pointer + 0x40

    def test_boundary_minus_one_passes(self, ocu, codec):
        pointer = codec.encode(0x12345600, 256)
        assert not ocu.check(pointer, pointer + 0xFF).overflow

    def test_crossing_boundary_clears_extent(self, ocu, codec):
        pointer = codec.encode(0x12345600, 256)
        result = ocu.check(pointer, pointer + 0x100)
        assert result.overflow
        assert codec.extent_of(result.value) == 0
        # Delayed termination: the address itself is preserved.
        assert codec.address_of(result.value) == 0x12345700

    def test_underflow_detected(self, ocu, codec):
        pointer = codec.encode(0x12345600, 256)
        result = ocu.check(pointer, pointer - 1)
        assert result.overflow

    def test_far_jump_detected(self, ocu, codec):
        pointer = codec.encode(0x12345600, 256)
        assert ocu.check(pointer, pointer + (1 << 30)).overflow

    def test_paper_example(self, ocu, codec):
        """0x12345678 in a 256 B buffer: 0x1234567F ok, 0x12345700 not."""
        pointer = codec.encode(0x12345600, 256) + 0x78
        assert not ocu.check(pointer, pointer + 0x07).overflow
        assert ocu.check(pointer, (pointer & ~0xFF) + 0x100).overflow


class TestInvalidPropagation:
    """Figure 11: arithmetic on freed pointers stays invalid."""

    def test_arithmetic_on_invalid_poisons_result(self, ocu, codec):
        pointer = codec.invalidate(codec.encode(0x12345600, 256))
        result = ocu.check(pointer, pointer + 4)
        assert result.propagated_invalid
        assert codec.extent_of(result.value) == 0

    def test_debug_extent_is_preserved_through_arithmetic(self):
        codec = PointerCodec(device_size_limit=1 << 33)
        ocu = OverflowCheckingUnit(codec)
        from repro.pointer import DebugCode

        pointer = codec.encode_debug(
            codec.encode(0x12345600, 256), DebugCode.TEMPORAL_VIOLATION
        )
        result = ocu.check(pointer, pointer + 4)
        assert codec.debug_code(result.value) is DebugCode.TEMPORAL_VIOLATION


class TestActivationBit:
    def test_unactivated_instructions_skip_the_check(self, ocu, codec):
        pointer = codec.encode(0x12345600, 256)
        result = ocu.process(pointer + (1 << 30), activated=False)
        assert not result.checked
        assert result.value == pointer + (1 << 30)

    def test_activated_instructions_are_checked(self, ocu, codec):
        pointer = codec.encode(0x12345600, 256)
        result = ocu.process(
            pointer + 0x100, activated=True, pointer_operand=pointer
        )
        assert result.checked
        assert result.overflow


class TestInputQueue:
    """Section VII-B: inputs stay synchronized with ALU outputs."""

    def test_fifo_pairing(self, ocu, codec):
        a = codec.encode(0x1000 * 256, 256)
        b = codec.encode(0x2000 * 256, 256)
        ocu.capture_input(a)
        ocu.capture_input(b)
        assert ocu.queue_depth == 2
        first = ocu.retire_output(a + 0x10)
        second = ocu.retire_output(b + 0x300)
        assert not first.overflow
        assert second.overflow
        assert ocu.queue_depth == 0

    def test_retire_on_empty_queue_raises(self, ocu):
        with pytest.raises(SimulationError):
            ocu.retire_output(0)


class TestStats:
    def test_counters_accumulate(self, ocu, codec):
        pointer = codec.encode(0x12345600, 256)
        ocu.check(pointer, pointer + 1)
        ocu.check(pointer, pointer + 0x200)
        ocu.check(codec.invalidate(pointer), pointer)
        stats = ocu.stats
        assert stats.checks == 3
        assert stats.overflows == 1
        assert stats.propagations == 1

    def test_reset(self, ocu, codec):
        pointer = codec.encode(0x12345600, 256)
        ocu.check(pointer, pointer)
        ocu.reset_stats()
        assert ocu.stats.checks == 0


class TestOcuOracleEquivalence:
    """Property: the OCU flags exactly the arithmetic that leaves the
    rounded buffer (the hardware is equivalent to an ideal bounds
    check at rounded-size granularity)."""

    @given(
        st.integers(min_value=1, max_value=1 << 16),
        st.integers(min_value=1, max_value=1 << 12),
        st.integers(min_value=-(1 << 20), max_value=1 << 20),
    )
    def test_equivalence(self, size, slot, delta):
        codec = PointerCodec()
        ocu = OverflowCheckingUnit(codec)
        rounded = codec.rounded_size(size)
        base = slot * rounded
        pointer = codec.encode(base, size)
        target = pointer + delta
        oracle_oob = not (0 <= delta < rounded)
        assert ocu.check(pointer, target).overflow == oracle_oob
