"""Unit + property tests for the LMI pointer encoding (paper V-A)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.config import LmiConfig
from repro.common.errors import ConfigurationError
from repro.pointer import (
    DEFAULT_CODEC,
    DebugCode,
    PointerCodec,
    join_registers,
    split_pointer,
)


@pytest.fixture
def codec():
    return PointerCodec()


class TestExtentFormula:
    """E = ceil(max(log2 K, log2 S)) - log2 K + 1 with K = 256."""

    def test_minimum_size_encodes_one(self, codec):
        assert codec.extent_for_size(256) == 1

    def test_sub_minimum_sizes_encode_one(self, codec):
        assert codec.extent_for_size(1) == 1
        assert codec.extent_for_size(100) == 1

    def test_zero_size_encodes_one(self, codec):
        assert codec.extent_for_size(0) == 1

    def test_512_encodes_two(self, codec):
        assert codec.extent_for_size(512) == 2

    def test_non_power_rounds_up(self, codec):
        assert codec.extent_for_size(257) == 2

    def test_max_size_256_gib(self, codec):
        assert codec.extent_for_size(1 << 38) == 31

    def test_oversized_rejected(self, codec):
        with pytest.raises(ConfigurationError):
            codec.extent_for_size((1 << 38) + 1)

    def test_negative_rejected(self, codec):
        with pytest.raises(ConfigurationError):
            codec.extent_for_size(-1)

    @given(st.integers(min_value=1, max_value=1 << 38))
    def test_size_roundtrip(self, size):
        codec = PointerCodec()
        extent = codec.extent_for_size(size)
        rounded = codec.size_for_extent(extent)
        assert rounded >= size
        assert rounded < 2 * max(size, 256)

    def test_paper_example_size_table(self, codec):
        """Spot-check the paper's encoding table endpoints."""
        assert codec.size_for_extent(1) == 256
        assert codec.size_for_extent(31) == 1 << 38


class TestEncodeDecode:
    def test_encode_places_extent_in_msbs(self, codec):
        pointer = codec.encode(0x12345600, 256)
        assert pointer >> 59 == 1

    def test_decode_recovers_fields(self, codec):
        pointer = codec.encode(0x10000, 1024)
        decoded = codec.decode(pointer)
        assert decoded.address == 0x10000
        assert decoded.size == 1024
        assert decoded.base == 0x10000
        assert decoded.is_valid

    def test_misaligned_base_rejected(self, codec):
        with pytest.raises(ConfigurationError):
            codec.encode(0x100, 1024)  # 1 KiB buffer must be 1 KiB aligned

    def test_invalid_pointer_decodes_invalid(self, codec):
        decoded = codec.decode(0x12345600)  # extent 0
        assert not decoded.is_valid
        assert decoded.size is None
        assert decoded.base is None

    @given(
        st.integers(min_value=0, max_value=30),
        st.integers(min_value=0, max_value=(1 << 20) - 1),
    )
    def test_encode_decode_roundtrip(self, extent_minus_one, slot):
        codec = PointerCodec()
        size = 256 << extent_minus_one
        base = slot * size
        if base + size > 1 << 59:
            return
        pointer = codec.encode(base, size)
        decoded = codec.decode(pointer)
        assert decoded.base == base
        assert decoded.size == size


class TestBaseRecovery:
    """Paper IV-A1: base recoverable from any interior pointer."""

    def test_paper_example(self, codec):
        pointer = codec.encode(0x12345600, 256)
        moved = pointer + 0x78
        assert codec.base_address(moved) == 0x12345600
        moved = pointer + 0x7F
        assert codec.base_address(moved) == 0x12345600

    @given(
        st.integers(min_value=1, max_value=1 << 20),
        st.integers(min_value=0, max_value=1 << 20),
    )
    def test_base_stable_under_interior_arithmetic(self, size, offset):
        codec = PointerCodec()
        rounded = codec.rounded_size(size)
        offset %= rounded
        base = 4 * rounded  # some aligned slot
        pointer = codec.encode(base, size)
        assert codec.base_address(pointer + offset) == base

    def test_bounds(self, codec):
        pointer = codec.encode(0x40000, 1024)
        assert codec.bounds(pointer) == (0x40000, 0x40400)

    def test_in_bounds(self, codec):
        pointer = codec.encode(0x40000, 1024)
        assert codec.in_bounds(pointer + 1020, 4)
        assert not codec.in_bounds(pointer + 1021, 4)

    def test_bounds_of_invalid_pointer_raises(self, codec):
        with pytest.raises(ConfigurationError):
            codec.bounds(0x40000)


class TestInvalidation:
    def test_invalidate_clears_extent(self, codec):
        pointer = codec.encode(0x40000, 1024)
        dead = codec.invalidate(pointer)
        assert codec.extent_of(dead) == 0
        assert not codec.is_valid(dead)

    def test_invalidate_preserves_address(self, codec):
        pointer = codec.encode(0x40000, 1024)
        assert codec.address_of(codec.invalidate(pointer)) == 0x40000


class TestDebugExtents:
    """Section IV-A3: impractically-large extents carry error codes."""

    def test_default_codec_has_no_debug_room(self, codec):
        pointer = codec.encode(0x40000, 1024)
        with pytest.raises(ConfigurationError):
            codec.encode_debug(pointer, DebugCode.TEMPORAL_VIOLATION)

    def test_limited_codec_roundtrips_codes(self):
        codec = PointerCodec(device_size_limit=1 << 33)  # 8 GiB DRAM
        pointer = codec.encode(0x40000, 1024)
        for code in DebugCode:
            stamped = codec.encode_debug(pointer, code)
            assert codec.debug_code(stamped) is code
            assert not codec.is_valid(stamped)

    def test_debug_code_none_for_valid(self):
        codec = PointerCodec(device_size_limit=1 << 33)
        pointer = codec.encode(0x40000, 1024)
        assert codec.debug_code(pointer) is None

    def test_size_limit_below_min_alignment_rejected(self):
        with pytest.raises(ConfigurationError):
            PointerCodec(device_size_limit=128)

    def test_size_limit_too_large_for_debug_rejected(self):
        with pytest.raises(ConfigurationError):
            PointerCodec(device_size_limit=1 << 38)

    def test_oversized_alloc_rejected_by_limit(self):
        codec = PointerCodec(device_size_limit=1 << 33)
        with pytest.raises(ConfigurationError):
            codec.extent_for_size(1 << 34)


class TestUmBits:
    """Section XII-C: (extent, UM) uniquely identifies a live buffer."""

    def test_um_distinct_for_neighbouring_buffers(self, codec):
        a = codec.encode(0x0000, 256)
        b = codec.encode(0x100, 256)
        assert codec.um_bits(a) != codec.um_bits(b)

    def test_um_stable_within_buffer(self, codec):
        pointer = codec.encode(0x40000, 1024)
        assert codec.um_bits(pointer) == codec.um_bits(pointer + 1023)

    def test_um_of_invalid_raises(self, codec):
        with pytest.raises(ConfigurationError):
            codec.um_bits(0x40000)

    def test_masks_partition_address_bits(self, codec):
        for extent in (1, 5, 31):
            modifiable = codec.modifiable_mask(extent)
            unmodifiable = codec.unmodifiable_mask(extent)
            assert modifiable & unmodifiable == 0
            assert modifiable | unmodifiable == (1 << 59) - 1


class TestRegisterPairMapping:
    """Figure 6: 64-bit pointer across two 32-bit physical registers."""

    def test_split_join_roundtrip(self):
        pointer = DEFAULT_CODEC.encode(0x12345600, 256)
        pair = split_pointer(pointer)
        assert pair.value == pointer
        assert join_registers(pair.low, pair.high) == pointer

    def test_extent_lives_in_high_register(self):
        pointer = DEFAULT_CODEC.encode(0x12345600, 256)
        pair = split_pointer(pointer)
        assert pair.high >> 27 == 1  # extent 1 in the top 5 of 32 bits

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_roundtrip_any_word(self, word):
        pair = split_pointer(word)
        assert pair.value == word


class TestNonDefaultConfig:
    def test_wider_extent_field(self):
        config = LmiConfig(extent_bits=6, min_alignment=128)
        codec = PointerCodec(config)
        assert codec.extent_for_size(128) == 1
        pointer = codec.encode(0x1000 * 128, 128)
        assert codec.decode(pointer).size == 128

    def test_address_bits_shrink_with_extent_bits(self):
        config = LmiConfig(extent_bits=8)
        assert config.address_bits == 56
