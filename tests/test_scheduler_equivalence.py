"""Scheduler-equivalence suite.

The event-heap GTO scheduler in :mod:`repro.sim.core` must be
cycle-for-cycle and stat-for-stat identical to the historical
linear-scan loop retained verbatim in :mod:`repro.sim.reference`.
This suite locks that contract over a seeded (profile × warps × model)
grid covering every timing mechanism, plus edge shapes (single warp,
empty streams) the grid would not hit.

It also locks the determinism contract of the experiment engine: the
``--jobs N`` process fan-out must produce byte-identical metrics and
trace exports for any N (verified here with the worker-pool path
forced on, since CI machines may report a single CPU).
"""

from __future__ import annotations

import json

import pytest

from repro.common.config import DEFAULT_GPU_CONFIG
from repro.experiments import engine as engine_module
from repro.experiments import run_fig12
from repro.sim import (
    KernelTrace,
    OpClass,
    SmSimulator,
    TraceInstruction,
    reference_simulate,
    simulate,
)
from repro.telemetry.export import chrome_trace, metrics_json
from repro.telemetry.runtime import TELEMETRY, capture
from repro.workloads import synthesize_trace

# ----------------------------------------------------------------------
# New scheduler == reference scheduler, across the mechanism grid.

#: Seeded (benchmark, warps, instructions) corpus: memory-heavy,
#: compute-bound, uncoalesced and mixed profiles at two occupancies.
CORPUS = [
    ("gaussian", 3, 300),
    ("gaussian", 8, 240),
    ("needle", 3, 300),
    ("needle", 8, 240),
    ("LSTM", 5, 260),
    ("bert", 4, 300),
    ("hotspot", 6, 250),
    ("lud_cuda", 3, 300),
    ("bfs", 7, 220),
    ("srad_v1", 2, 320),
]

MODELS = ("baseline", "lmi", "gpushield", "baggy")


def _combo_id(combo) -> str:
    benchmark, warps, instructions = combo
    return f"{benchmark}-w{warps}-i{instructions}"


@pytest.mark.parametrize("mechanism", MODELS)
@pytest.mark.parametrize("combo", CORPUS, ids=_combo_id)
def test_scheduler_matches_reference(combo, mechanism):
    benchmark, warps, instructions = combo
    trace = synthesize_trace(
        benchmark, warps=warps, instructions_per_warp=instructions
    )
    got = simulate(trace, engine_module.model_factory(mechanism))
    want = reference_simulate(
        trace, engine_module.model_factory(mechanism)
    )
    assert got.cycles == want.cycles
    assert got.stats == want.stats
    assert got.name == want.name


def test_single_warp_matches_reference():
    trace = synthesize_trace("nn", warps=1, instructions_per_warp=150)
    for mechanism in MODELS:
        got = simulate(trace, engine_module.model_factory(mechanism))
        want = reference_simulate(
            trace, engine_module.model_factory(mechanism)
        )
        assert (got.cycles, got.stats) == (want.cycles, want.stats)


def test_empty_stream_warp_matches_reference():
    """A warp with zero instructions must not wedge either scheduler."""
    busy = [
        TraceInstruction(op=OpClass.INT),
        TraceInstruction(op=OpClass.LDG, lines=(0x100,), depends=True),
        TraceInstruction(op=OpClass.FP, depends=True),
    ]
    trace = KernelTrace(name="edge", warps=[list(busy), [], list(busy)])
    got = simulate(trace)
    want = reference_simulate(trace)
    assert got.cycles == want.cycles
    assert got.stats == want.stats


def test_simulator_instance_is_reusable():
    """Per-run stats are fresh; cache warmth persists (by design)."""
    trace = synthesize_trace("hotspot", warps=4, instructions_per_warp=200)
    sim = SmSimulator(DEFAULT_GPU_CONFIG, engine_module.model_factory("lmi"))
    first = sim.run(trace)
    second = sim.run(trace)
    # Same instruction count both times: counters do not accumulate
    # across runs (the historical self._stats leak).
    assert second.stats.instructions == first.stats.instructions
    assert first.stats is not second.stats
    # Warm caches can only help: the second run's L1 hit count is at
    # least the first run's.
    assert second.stats.l1_hits >= first.stats.l1_hits


# ----------------------------------------------------------------------
# Engine determinism: --jobs N is byte-identical to the serial path.

_BENCHMARKS = ("gaussian", "needle", "LSTM")
_SIZES = dict(warps=3, instructions_per_warp=200)


def _fig12_with_exports(jobs: int):
    """(table text, metrics JSON bytes, trace JSON bytes) for one run."""
    with capture(sample_every=1) as hub:
        result = run_fig12(_BENCHMARKS, jobs=jobs, **_SIZES)
        metrics = json.dumps(
            metrics_json(hub.registry, recorder=hub.recorder),
            sort_keys=True,
        )
        trace = json.dumps(
            chrome_trace(hub.tracer, hub.recorder), sort_keys=True
        )
    return result.format_table(), metrics, trace


def test_jobs_fanout_byte_identical(monkeypatch):
    """--jobs 4 output must match --jobs 1 byte-for-byte.

    ``_effective_workers`` collapses to the serial path on single-CPU
    machines, so the CPU count is pinned to force the real worker-pool
    path (fork + pickle + telemetry replay) under ``jobs=4``.
    """
    serial = _fig12_with_exports(jobs=1)
    monkeypatch.setattr(engine_module.os, "cpu_count", lambda: 4)
    assert engine_module._effective_workers(4, 12) == 4
    parallel = _fig12_with_exports(jobs=4)
    assert parallel[0] == serial[0]  # the figure itself
    assert parallel[1] == serial[1]  # --metrics export
    assert parallel[2] == serial[2]  # --trace export


def test_effective_workers_caps():
    monkeypatch_cpus = engine_module.os.cpu_count() or 1
    assert engine_module._effective_workers(1, 100) == 1
    assert engine_module._effective_workers(100, 2) <= 2
    assert engine_module._effective_workers(100, 100) <= monkeypatch_cpus


def test_fan_out_preserves_order(monkeypatch):
    monkeypatch.setattr(engine_module.os, "cpu_count", lambda: 4)
    items = list(range(7))
    assert engine_module.fan_out(_square, items, n_jobs=4) == [
        n * n for n in items
    ]


def _square(n: int) -> int:  # top-level: must be picklable
    return n * n


def test_jobs_disabled_telemetry_stays_silent(monkeypatch):
    """Workers must not double-count when telemetry is off."""
    monkeypatch.setattr(engine_module.os, "cpu_count", lambda: 4)
    assert not TELEMETRY.enabled
    before = len(TELEMETRY.registry)
    run_fig12(("gaussian",), jobs=4, warps=2, instructions_per_warp=120)
    assert len(TELEMETRY.registry) == before
