"""Tests for the Table III security suite and harness.

The headline assertion: every cell of the reproduced Table III matches
the paper.  Additional tests pin the suite's structure (case counts
per category) and the oracle discipline (every case really violates).
"""

import pytest

from repro.experiments.table3_security import (
    PAPER_TABLE3,
    PAPER_TOTALS,
    mismatches,
)
from repro.mechanisms import LmiMechanism, create_mechanism
from repro.security import (
    Category,
    SecurityReport,
    all_cases,
    run_security_evaluation,
)


@pytest.fixture(scope="module")
def report() -> SecurityReport:
    return run_security_evaluation()


class TestSuiteStructure:
    def test_38_cases_total(self):
        assert len(all_cases()) == 38

    @pytest.mark.parametrize("category,total", list(PAPER_TOTALS.items()))
    def test_case_counts_match_paper(self, category, total):
        count = sum(
            1 for case in all_cases() if case.category.value == category
        )
        assert count == total

    def test_case_ids_unique(self):
        ids = [case.case_id for case in all_cases()]
        assert len(ids) == len(set(ids))

    def test_every_case_has_description(self):
        assert all(case.description for case in all_cases())


class TestOracleDiscipline:
    def test_every_case_actually_violates(self, report):
        assert report.oracle_failures() == []


class TestTable3Reproduction:
    def test_every_cell_matches_the_paper(self, report):
        assert mismatches(report) == []

    def test_lmi_spatial_coverage_band(self, report):
        coverage = report.coverage("lmi", spatial=True)
        # 19/22 measured; the paper prints 85.7 % — same band.
        assert 0.82 <= coverage <= 0.90

    def test_temporal_coverage_ordering(self, report):
        assert report.coverage("gmod", spatial=False) == pytest.approx(0.25)
        assert report.coverage("gpushield", spatial=False) == pytest.approx(0.25)
        assert report.coverage("cucatch", spatial=False) == pytest.approx(0.75)
        assert report.coverage("lmi", spatial=False) == pytest.approx(0.75)

    def test_coverage_strictly_improves_toward_lmi(self, report):
        spatial = [
            report.coverage(m, spatial=True)
            for m in ("gmod", "gpushield", "cucatch", "lmi")
        ]
        assert spatial == sorted(spatial)
        assert spatial[-1] > spatial[0]

    def test_nobody_catches_intra_object(self, report):
        for mechanism in ("gmod", "gpushield", "cucatch", "lmi"):
            assert report.detections(mechanism, Category.INTRA_OOB) == 0

    def test_everyone_catches_free_errors(self, report):
        for mechanism in ("gmod", "gpushield", "cucatch", "lmi"):
            assert report.detections(mechanism, Category.INVALID_FREE) == 2
            assert report.detections(mechanism, Category.DOUBLE_FREE) == 2

    def test_format_table_renders(self, report):
        text = report.format_table()
        assert "Global OoB" in text
        assert "lmi" in text
        assert "Spatial coverage" in text


class TestLmiUafComposition:
    """LMI and cuCatch both score 4/8 UAF — but on *different* cases."""

    def test_lmi_catches_originals_misses_copies(self, report):
        lmi_hits = {
            r.case_id
            for r in report.results
            if r.mechanism == "lmi"
            and r.category is Category.UAF
            and r.outcome.true_positive
        }
        assert lmi_hits == {
            "uaf-global-immediate-original",
            "uaf-global-delayed-original",
            "uaf-heap-immediate-original",
            "uaf-heap-delayed-original",
        }

    def test_cucatch_catches_global_misses_heap(self, report):
        cucatch_hits = {
            r.case_id
            for r in report.results
            if r.mechanism == "cucatch"
            and r.category is Category.UAF
            and r.outcome.true_positive
        }
        assert cucatch_hits == {
            "uaf-global-immediate-original",
            "uaf-global-immediate-copied",
            "uaf-global-delayed-original",
            "uaf-global-delayed-copied",
        }


class TestLivenessAblation:
    """Section XII-C: liveness tracking closes the copied-pointer gap."""

    def test_liveness_tracking_catches_immediate_copied_uaf(self):
        """Copied-pointer UAF (Figure 11's miss) is caught — except the
        delayed-copied cases where the allocator reuses the exact slot
        and size, reviving the identical (extent, UM) key.  That alias
        is inherent to the UM-membership design."""
        uaf_cases = {c.case_id: c for c in all_cases()
                     if c.category is Category.UAF}
        hits = {
            case_id
            for case_id, case in uaf_cases.items()
            if case.run(LmiMechanism(liveness_tracking=True)).true_positive
        }
        assert hits == {
            "uaf-global-immediate-original",
            "uaf-global-immediate-copied",
            "uaf-global-delayed-original",
            "uaf-heap-immediate-original",
            "uaf-heap-immediate-copied",
            "uaf-heap-delayed-original",
        }
        # Strictly better than base LMI (4/8 -> 6/8).
        assert len(hits) == 6

    def test_liveness_does_not_break_spatial(self):
        spatial = [
            c for c in all_cases() if c.category is Category.GLOBAL_OOB
        ]
        for case in spatial:
            assert case.run(LmiMechanism(liveness_tracking=True)).true_positive


class TestNoFalsePositives:
    """Mechanisms must stay silent on clean programs."""

    @pytest.mark.parametrize(
        "mechanism", ["gmod", "gpushield", "cucatch", "lmi", "memcheck"]
    )
    def test_clean_kernel_passes(self, mechanism):
        from repro.compiler import IRType, KernelBuilder, run_lmi_pass
        from repro.exec import GpuExecutor

        b = KernelBuilder("clean", params=[("data", IRType.PTR)])
        tid = b.thread_idx()
        slot = b.ptradd(b.param("data"), b.mul(tid, 4))
        b.store(slot, 7, width=4)
        b.load(slot, width=4)
        buf = b.alloca(256)
        b.store(buf, 1, width=4)
        h = b.malloc(512)
        b.store(h, 2, width=4)
        b.free(h)
        b.ret()
        module = b.module()
        run_lmi_pass(module)
        executor = GpuExecutor(module, create_mechanism(mechanism),
                               block_threads=8)
        data = executor.host_alloc(1024)
        result = executor.launch({"data": data})
        assert result.completed
        assert not result.oracle_violated
        assert not result.false_positive
