"""Serving-plane tests: protocol validation, daemon equivalence with
the engine, coalescing, admission control, cache sharing, and
per-request forensics (trace header, waterfalls, structured logs,
slow-request capture)."""

import dataclasses
import json
import re
import tempfile
import urllib.error
import urllib.request

import pytest

from repro.common.config import DEFAULT_GPU_CONFIG
from repro.experiments.engine import SimJob, run_sim_jobs
from repro.serve import (
    RequestError,
    ServeDaemon,
    build_config,
    parse_simulate,
)
from repro.serve.loadgen import build_cells, run_swarm_sync, zipf_schedule
from repro.serve.protocol import TRACE_HEADER

_TRACE_ID_RE = re.compile(r"^rtx-[0-9a-f]{16}$")


def _body(**overrides) -> bytes:
    doc = {
        "benchmark": "gaussian",
        "mechanism": "lmi",
        "warps": 2,
        "instructions_per_warp": 200,
    }
    doc.update(overrides)
    return json.dumps(doc).encode("utf-8")


def _post(url: str, body: bytes, headers=None):
    request = urllib.request.Request(
        url + "/v1/simulate", data=body, headers=headers or {}
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


def _get(url: str, path: str):
    with urllib.request.urlopen(url + path, timeout=30) as response:
        return response.status, response.read()


# ----------------------------------------------------------------------
# Protocol


class TestProtocol:
    def test_minimal_request_parses_with_defaults(self):
        parsed = parse_simulate(
            json.dumps({"benchmark": "gaussian", "mechanism": "lmi"}).encode()
        )
        assert parsed.job.benchmark == "gaussian"
        assert parsed.job.warps == 8
        assert parsed.job.instructions_per_warp == 2000
        assert parsed.config is DEFAULT_GPU_CONFIG
        assert parsed.tenant == "anonymous"

    def test_header_tenant_and_body_tenant(self):
        raw = _body(tenant="team-a")
        assert parse_simulate(raw, "team-b").tenant == "team-a"
        assert parse_simulate(_body(), "team-b").tenant == "team-b"

    @pytest.mark.parametrize(
        "mutation",
        [
            {"benchmark": "nope"},
            {"mechanism": "nope"},
            {"benchmark": 7},
            {"warps": 0},
            {"warps": "eight"},
            {"warps": True},
            {"instructions_per_warp": -1},
            {"seed_salt": -5},
            {"tenant": 12},
            {"config": {"bogus_field": 1}},
            {"config": {"num_sms": 0}},
            {"config": {"l1": {"ways": "many"}}},
            {"config": {"l1": {"bogus": 1}}},
            {"config": []},
        ],
    )
    def test_invalid_requests_raise(self, mutation):
        with pytest.raises(RequestError):
            parse_simulate(_body(**mutation))

    def test_non_json_and_non_object_bodies(self):
        with pytest.raises(RequestError):
            parse_simulate(b"\xff\xfe")
        with pytest.raises(RequestError):
            parse_simulate(b"[1, 2]")

    def test_build_config_nested_overrides(self):
        config = build_config({"num_sms": 40, "l1": {"ways": 2}})
        assert config.num_sms == 40
        assert config.l1.ways == 2
        # Untouched fields keep their defaults.
        assert config.l1.size_bytes == DEFAULT_GPU_CONFIG.l1.size_bytes
        assert config.l2 == DEFAULT_GPU_CONFIG.l2

    def test_build_config_empty_is_default(self):
        assert build_config(None) is DEFAULT_GPU_CONFIG
        assert build_config({}) is DEFAULT_GPU_CONFIG


# ----------------------------------------------------------------------
# Daemon


@pytest.fixture()
def daemon():
    instance = ServeDaemon(0)
    instance.start()
    yield instance
    instance.stop()


class TestDaemon:
    def test_engine_equivalence_including_config_overrides(self, daemon):
        """Daemon answers are byte-identical to direct engine calls."""
        cases = [
            ({}, DEFAULT_GPU_CONFIG),
            (
                {"config": {"num_sms": 8, "l1": {"ways": 2}}},
                build_config({"num_sms": 8, "l1": {"ways": 2}}),
            ),
            ({"mechanism": "baseline"}, DEFAULT_GPU_CONFIG),
        ]
        for overrides, config in cases:
            status, doc = _post(daemon.url, _body(**overrides))
            assert status == 200
            job = SimJob(
                benchmark=doc["benchmark"],
                mechanism=doc["mechanism"],
                warps=doc["warps"],
                instructions_per_warp=doc["instructions_per_warp"],
                seed_salt=doc["seed_salt"],
            )
            [expected] = run_sim_jobs([job], config=config)
            assert doc["cycles"] == expected.cycles
            assert doc["stats"] == dataclasses.asdict(expected.stats)

    def test_repeat_request_hits_memory_cache(self, daemon):
        _, first = _post(daemon.url, _body())
        _, second = _post(daemon.url, _body())
        assert first["source"] == "executed"
        assert second["source"] == "memory"
        assert second["cycles"] == first["cycles"]
        assert second["stats"] == first["stats"]
        assert second["digest"] == first["digest"]

    def test_distinct_config_distinct_digest(self, daemon):
        _, plain = _post(daemon.url, _body())
        _, tweaked = _post(daemon.url, _body(config={"num_sms": 8}))
        assert plain["digest"] != tweaked["digest"]

    def test_bad_request_is_400(self, daemon):
        with pytest.raises(urllib.error.HTTPError) as info:
            _post(daemon.url, b'{"benchmark": "nope", "mechanism": "lmi"}')
        assert info.value.code == 400

    def test_observability_endpoints(self, daemon):
        _post(daemon.url, _body())
        status, raw = _get(daemon.url, "/healthz")
        assert status == 200 and json.loads(raw)["status"] == "ok"
        status, raw = _get(daemon.url, "/stats")
        stats = json.loads(raw)
        assert status == 200
        assert stats["requests"]["ok"] >= 1
        assert stats["batches"] >= 1
        status, raw = _get(daemon.url, "/metrics")
        assert status == 200
        text = raw.decode("utf-8")
        assert "serve_requests" in text or "serve:requests" in text or (
            "serve" in text
        )
        status, raw = _get(daemon.url, "/progress")
        assert status == 200 and "run" in json.loads(raw)
        with pytest.raises(urllib.error.HTTPError) as info:
            _get(daemon.url, "/nope")
        assert info.value.code == 404

    def test_coalescing_identical_inflight_requests(self):
        """16 concurrent identical requests share one execution."""
        with ServeDaemon(0) as daemon:
            cells = build_cells(1, seed=3)
            summary = run_swarm_sync(
                "127.0.0.1",
                daemon.port,
                requests=16,
                concurrency=16,
                cells=cells,
            )
            assert summary["errors"] == 0
            assert summary["dropped"] == 0
            by_source = summary["by_source"]
            assert by_source.get("executed", 0) == 1
            # Everything else coalesced onto the single execution or
            # hit the memory cache right behind it.
            assert (
                by_source.get("coalesced", 0) + by_source.get("memory", 0)
                == 15
            )
            assert daemon.stats_snapshot()["batches"] == 1

    def test_tenant_quota_throttles_with_retry_after(self):
        with ServeDaemon(0, tenant_rps=0.5, tenant_burst=1) as daemon:
            status, _ = _post(daemon.url, _body(tenant="greedy"))
            assert status == 200
            with pytest.raises(urllib.error.HTTPError) as info:
                _post(daemon.url, _body(tenant="greedy"))
            assert info.value.code == 429
            assert int(info.value.headers["Retry-After"]) >= 1
            # A different tenant is not throttled.
            status, _ = _post(daemon.url, _body(tenant="patient"))
            assert status == 200

    def test_pending_bound_rejects_excess_distinct_cells(self):
        with ServeDaemon(0, max_pending=1, window_ms=50.0) as daemon:
            cells = build_cells(4, seed=5)
            summary = run_swarm_sync(
                "127.0.0.1",
                daemon.port,
                requests=4,
                concurrency=4,
                cells=cells,
                zipf_s=0.0,
            )
            assert summary["errors"] == 0
            assert summary["dropped"] == 0
            # At least one distinct cell found the in-flight table full
            # and was explicitly rejected, not dropped.
            assert summary["throttled"] >= 1

    def test_zero_drop_under_concurrency(self):
        with ServeDaemon(0) as daemon:
            summary = run_swarm_sync(
                "127.0.0.1",
                daemon.port,
                requests=300,
                concurrency=100,
                population=8,
                seed=11,
            )
            assert summary["errors"] == 0
            assert summary["dropped"] == 0
            assert summary["ok"] == 300
            # The zipf mix means far fewer executions than requests.
            assert summary["by_source"].get("executed", 0) <= 8

    def test_disk_cache_shared_across_daemon_restarts(self):
        with tempfile.TemporaryDirectory() as cache_dir:
            with ServeDaemon(0, cache_dir=cache_dir) as daemon:
                _, cold = _post(daemon.url, _body())
                assert cold["source"] == "executed"
            with ServeDaemon(0, cache_dir=cache_dir) as daemon:
                _, warm = _post(daemon.url, _body())
                assert warm["source"] == "disk"
                assert warm["cycles"] == cold["cycles"]
                assert warm["stats"] == cold["stats"]

    def test_clean_shutdown_leaves_no_threads(self):
        import threading

        before = {t.name for t in threading.enumerate()}
        daemon = ServeDaemon(0).start()
        _post(daemon.url, _body())
        daemon.stop()
        leftover = {
            t.name
            for t in threading.enumerate()
            if t.name.startswith("repro-serve")
        } - before
        assert not leftover


# ----------------------------------------------------------------------
# Request forensics: trace header, waterfalls, logs, slow capture


def _post_traced(url: str, body: bytes, headers=None):
    """(status, body document, trace-id header) for one simulate."""
    request = urllib.request.Request(
        url + "/v1/simulate", data=body, headers=headers or {}
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return (
            response.status,
            json.loads(response.read()),
            response.headers.get(TRACE_HEADER),
        )


class TestRequestForensics:
    @pytest.fixture(autouse=True)
    def _fresh_diagnostics(self):
        """Empty global trace/log stores so cross-test records from the
        process-wide singletons never bleed into assertions."""
        from repro.telemetry.log import LOG
        from repro.telemetry.tracectx import TRACES

        TRACES.clear()
        LOG.clear()
        yield
        TRACES.clear()
        LOG.clear()

    def test_every_response_carries_a_trace_header(self, daemon):
        seen = set()
        for salt in range(3):
            status, doc, trace_id = _post_traced(
                daemon.url, _body(seed_salt=salt)
            )
            assert status == 200
            assert trace_id and _TRACE_ID_RE.match(trace_id)
            seen.add(trace_id)
            # Header only — the body stays on the engine-equivalence
            # contract, no trace id inside.
            assert "rtx-" not in json.dumps(doc)
        assert len(seen) == 3
        # Cache hits are traced too (memory path).
        _, doc, hit_id = _post_traced(daemon.url, _body(seed_salt=0))
        assert doc["source"] == "memory"
        assert hit_id and hit_id not in seen

    def test_waterfall_sums_to_total_within_tolerance(self, daemon):
        _, doc, trace_id = _post_traced(daemon.url, _body())
        status, raw = _get(daemon.url, f"/trace/{trace_id}")
        assert status == 200
        trace = json.loads(raw)
        assert trace["trace_id"] == trace_id
        assert trace["complete"] is True
        stages = {s["stage"]: s["duration_ms"] for s in trace["stages"]}
        for expected in ("admission", "queue_wait", "sim", "serialize"):
            assert expected in stages, sorted(stages)
        total = trace["total_ms"]
        stage_sum = sum(stages.values())
        # Headline criterion is 10%; the synthetic unattributed stage
        # makes it exact by construction.
        assert abs(stage_sum - total) <= 0.10 * total
        assert stage_sum == pytest.approx(total, abs=0.01)
        # The trace covers through serialization, so it can only be
        # longer than the pre-serialize elapsed_ms in the body.
        assert total >= doc["elapsed_ms"] * 0.5

    def test_trace_list_and_unknown_trace_404(self, daemon):
        _, _, trace_id = _post_traced(daemon.url, _body())
        status, raw = _get(daemon.url, "/trace")
        listing = json.loads(raw)
        assert status == 200
        assert listing["schema"] == "repro.telemetry.trace-list/v1"
        assert any(
            t["trace_id"] == trace_id for t in listing["traces"]
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            _get(daemon.url, "/trace/rtx-0000000000000000")
        assert info.value.code == 404

    def test_coalesced_request_gets_its_own_trace(self, monkeypatch):
        import threading

        # Pin the executed cell for ~80ms so the followers reliably
        # find it in flight and coalesce rather than hit the cache.
        monkeypatch.setenv(
            "REPRO_SERVE_INJECT_DELAY", "gaussian:lmi:80"
        )
        with ServeDaemon(0) as daemon:
            results = []

            def fire():
                results.append(_post_traced(daemon.url, _body()))

            threads = [
                threading.Thread(target=fire) for _ in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            sources = [doc["source"] for _, doc, _ in results]
            assert sources.count("executed") == 1
            assert sources.count("coalesced") >= 1
            ids = [tid for _, _, tid in results]
            assert len(set(ids)) == 4  # followers get their own ids
            primary_id = next(
                tid for _, doc, tid in results
                if doc["source"] == "executed"
            )
            follower = next(
                (doc, tid) for _, doc, tid in results
                if doc["source"] == "coalesced"
            )
            _, raw = _get(daemon.url, f"/trace/{follower[1]}")
            trace = json.loads(raw)
            stage_names = [s["stage"] for s in trace["stages"]]
            assert "coalesce_wait" in stage_names
            assert trace["attrs"]["coalesced_with"] == primary_id

    def test_logs_endpoint_and_slow_capture(self, monkeypatch):
        monkeypatch.setenv(
            "REPRO_SERVE_INJECT_DELAY", "gaussian:lmi:30"
        )
        with ServeDaemon(0, slow_ms=5.0) as daemon:
            _, doc, trace_id = _post_traced(daemon.url, _body())
            assert doc["source"] == "executed"
            status, raw = _get(daemon.url, "/logs?level=warning")
            body = json.loads(raw)
            assert status == 200
            slow = [
                r for r in body["records"]
                if r["event"] == "slow_request"
            ]
            assert slow, body
            assert slow[-1]["trace_id"] == trace_id
            assert slow[-1]["elapsed_ms"] >= 30.0
            # The injected delay shows up as its own waterfall stage.
            _, raw = _get(daemon.url, f"/trace/{trace_id}")
            stages = {
                s["stage"]: s["duration_ms"]
                for s in json.loads(raw)["stages"]
            }
            assert stages.get("inject_delay", 0.0) >= 25.0
            # ...and the capture reaches /stats for repro report.
            snapshot = daemon.stats_snapshot()
            captured = snapshot["slow_requests"]
            assert captured and captured[-1]["trace_id"] == trace_id
            # Filtering by trace reconstructs this request's story.
            _, raw = _get(daemon.url, f"/logs?trace={trace_id}")
            assert json.loads(raw)["count"] >= 1

    def test_stats_carry_per_stage_quantiles(self, daemon):
        _post(daemon.url, _body())
        snapshot = daemon.stats_snapshot()
        stages = snapshot["stages"]
        for expected in ("admission", "sim", "serialize"):
            assert expected in stages
            block = stages[expected]
            assert block["count"] >= 1
            assert block["p99"] >= block["p50"] >= 0.0

    def test_loadgen_reports_slowest_trace_ids(self):
        with ServeDaemon(0) as daemon:
            summary = run_swarm_sync(
                "127.0.0.1", daemon.port,
                requests=12, concurrency=4,
                cells=build_cells(3, seed=5),
            )
            slowest = summary["slowest"]
            assert slowest, summary
            assert all(
                _TRACE_ID_RE.match(entry["trace_id"])
                for entry in slowest
            )
            # Sorted slowest-first, and every id names a real trace.
            elapsed = [entry["elapsed_ms"] for entry in slowest]
            assert elapsed == sorted(elapsed, reverse=True)
            _, raw = _get(
                daemon.url, f"/trace/{slowest[0]['trace_id']}"
            )
            assert json.loads(raw)["complete"] is True
            assert summary["failed"] == []

    def test_no_tracing_disables_header_and_trace_store(self):
        with ServeDaemon(0, tracing=False) as daemon:
            status, doc, trace_id = _post_traced(daemon.url, _body())
            assert status == 200
            assert trace_id is None
            status, raw = _get(daemon.url, "/trace")
            assert json.loads(raw)["count"] == 0
            # Still serves results identically.
            assert doc["source"] == "executed"


# ----------------------------------------------------------------------
# Load generator internals


class TestLoadgen:
    def test_build_cells_deterministic_and_distinct(self):
        a = build_cells(12, seed=9)
        b = build_cells(12, seed=9)
        assert a == b
        keys = {
            (c["benchmark"], c["mechanism"], c["seed_salt"]) for c in a
        }
        assert len(keys) == 12

    def test_zipf_schedule_is_skewed_and_deterministic(self):
        picks = zipf_schedule(1000, 16, s=1.2, seed=4)
        assert picks == zipf_schedule(1000, 16, s=1.2, seed=4)
        assert all(0 <= p < 16 for p in picks)
        # Rank-0 must dominate any tail cell under zipf weighting.
        assert picks.count(0) > picks.count(15)
