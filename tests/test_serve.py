"""Serving-plane tests: protocol validation, daemon equivalence with
the engine, coalescing, admission control and cache sharing."""

import dataclasses
import json
import tempfile
import urllib.error
import urllib.request

import pytest

from repro.common.config import DEFAULT_GPU_CONFIG
from repro.experiments.engine import SimJob, run_sim_jobs
from repro.serve import (
    RequestError,
    ServeDaemon,
    build_config,
    parse_simulate,
)
from repro.serve.loadgen import build_cells, run_swarm_sync, zipf_schedule


def _body(**overrides) -> bytes:
    doc = {
        "benchmark": "gaussian",
        "mechanism": "lmi",
        "warps": 2,
        "instructions_per_warp": 200,
    }
    doc.update(overrides)
    return json.dumps(doc).encode("utf-8")


def _post(url: str, body: bytes, headers=None):
    request = urllib.request.Request(
        url + "/v1/simulate", data=body, headers=headers or {}
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


def _get(url: str, path: str):
    with urllib.request.urlopen(url + path, timeout=30) as response:
        return response.status, response.read()


# ----------------------------------------------------------------------
# Protocol


class TestProtocol:
    def test_minimal_request_parses_with_defaults(self):
        parsed = parse_simulate(
            json.dumps({"benchmark": "gaussian", "mechanism": "lmi"}).encode()
        )
        assert parsed.job.benchmark == "gaussian"
        assert parsed.job.warps == 8
        assert parsed.job.instructions_per_warp == 2000
        assert parsed.config is DEFAULT_GPU_CONFIG
        assert parsed.tenant == "anonymous"

    def test_header_tenant_and_body_tenant(self):
        raw = _body(tenant="team-a")
        assert parse_simulate(raw, "team-b").tenant == "team-a"
        assert parse_simulate(_body(), "team-b").tenant == "team-b"

    @pytest.mark.parametrize(
        "mutation",
        [
            {"benchmark": "nope"},
            {"mechanism": "nope"},
            {"benchmark": 7},
            {"warps": 0},
            {"warps": "eight"},
            {"warps": True},
            {"instructions_per_warp": -1},
            {"seed_salt": -5},
            {"tenant": 12},
            {"config": {"bogus_field": 1}},
            {"config": {"num_sms": 0}},
            {"config": {"l1": {"ways": "many"}}},
            {"config": {"l1": {"bogus": 1}}},
            {"config": []},
        ],
    )
    def test_invalid_requests_raise(self, mutation):
        with pytest.raises(RequestError):
            parse_simulate(_body(**mutation))

    def test_non_json_and_non_object_bodies(self):
        with pytest.raises(RequestError):
            parse_simulate(b"\xff\xfe")
        with pytest.raises(RequestError):
            parse_simulate(b"[1, 2]")

    def test_build_config_nested_overrides(self):
        config = build_config({"num_sms": 40, "l1": {"ways": 2}})
        assert config.num_sms == 40
        assert config.l1.ways == 2
        # Untouched fields keep their defaults.
        assert config.l1.size_bytes == DEFAULT_GPU_CONFIG.l1.size_bytes
        assert config.l2 == DEFAULT_GPU_CONFIG.l2

    def test_build_config_empty_is_default(self):
        assert build_config(None) is DEFAULT_GPU_CONFIG
        assert build_config({}) is DEFAULT_GPU_CONFIG


# ----------------------------------------------------------------------
# Daemon


@pytest.fixture()
def daemon():
    instance = ServeDaemon(0)
    instance.start()
    yield instance
    instance.stop()


class TestDaemon:
    def test_engine_equivalence_including_config_overrides(self, daemon):
        """Daemon answers are byte-identical to direct engine calls."""
        cases = [
            ({}, DEFAULT_GPU_CONFIG),
            (
                {"config": {"num_sms": 8, "l1": {"ways": 2}}},
                build_config({"num_sms": 8, "l1": {"ways": 2}}),
            ),
            ({"mechanism": "baseline"}, DEFAULT_GPU_CONFIG),
        ]
        for overrides, config in cases:
            status, doc = _post(daemon.url, _body(**overrides))
            assert status == 200
            job = SimJob(
                benchmark=doc["benchmark"],
                mechanism=doc["mechanism"],
                warps=doc["warps"],
                instructions_per_warp=doc["instructions_per_warp"],
                seed_salt=doc["seed_salt"],
            )
            [expected] = run_sim_jobs([job], config=config)
            assert doc["cycles"] == expected.cycles
            assert doc["stats"] == dataclasses.asdict(expected.stats)

    def test_repeat_request_hits_memory_cache(self, daemon):
        _, first = _post(daemon.url, _body())
        _, second = _post(daemon.url, _body())
        assert first["source"] == "executed"
        assert second["source"] == "memory"
        assert second["cycles"] == first["cycles"]
        assert second["stats"] == first["stats"]
        assert second["digest"] == first["digest"]

    def test_distinct_config_distinct_digest(self, daemon):
        _, plain = _post(daemon.url, _body())
        _, tweaked = _post(daemon.url, _body(config={"num_sms": 8}))
        assert plain["digest"] != tweaked["digest"]

    def test_bad_request_is_400(self, daemon):
        with pytest.raises(urllib.error.HTTPError) as info:
            _post(daemon.url, b'{"benchmark": "nope", "mechanism": "lmi"}')
        assert info.value.code == 400

    def test_observability_endpoints(self, daemon):
        _post(daemon.url, _body())
        status, raw = _get(daemon.url, "/healthz")
        assert status == 200 and json.loads(raw)["status"] == "ok"
        status, raw = _get(daemon.url, "/stats")
        stats = json.loads(raw)
        assert status == 200
        assert stats["requests"]["ok"] >= 1
        assert stats["batches"] >= 1
        status, raw = _get(daemon.url, "/metrics")
        assert status == 200
        text = raw.decode("utf-8")
        assert "serve_requests" in text or "serve:requests" in text or (
            "serve" in text
        )
        status, raw = _get(daemon.url, "/progress")
        assert status == 200 and "run" in json.loads(raw)
        with pytest.raises(urllib.error.HTTPError) as info:
            _get(daemon.url, "/nope")
        assert info.value.code == 404

    def test_coalescing_identical_inflight_requests(self):
        """16 concurrent identical requests share one execution."""
        with ServeDaemon(0) as daemon:
            cells = build_cells(1, seed=3)
            summary = run_swarm_sync(
                "127.0.0.1",
                daemon.port,
                requests=16,
                concurrency=16,
                cells=cells,
            )
            assert summary["errors"] == 0
            assert summary["dropped"] == 0
            by_source = summary["by_source"]
            assert by_source.get("executed", 0) == 1
            # Everything else coalesced onto the single execution or
            # hit the memory cache right behind it.
            assert (
                by_source.get("coalesced", 0) + by_source.get("memory", 0)
                == 15
            )
            assert daemon.stats_snapshot()["batches"] == 1

    def test_tenant_quota_throttles_with_retry_after(self):
        with ServeDaemon(0, tenant_rps=0.5, tenant_burst=1) as daemon:
            status, _ = _post(daemon.url, _body(tenant="greedy"))
            assert status == 200
            with pytest.raises(urllib.error.HTTPError) as info:
                _post(daemon.url, _body(tenant="greedy"))
            assert info.value.code == 429
            assert int(info.value.headers["Retry-After"]) >= 1
            # A different tenant is not throttled.
            status, _ = _post(daemon.url, _body(tenant="patient"))
            assert status == 200

    def test_pending_bound_rejects_excess_distinct_cells(self):
        with ServeDaemon(0, max_pending=1, window_ms=50.0) as daemon:
            cells = build_cells(4, seed=5)
            summary = run_swarm_sync(
                "127.0.0.1",
                daemon.port,
                requests=4,
                concurrency=4,
                cells=cells,
                zipf_s=0.0,
            )
            assert summary["errors"] == 0
            assert summary["dropped"] == 0
            # At least one distinct cell found the in-flight table full
            # and was explicitly rejected, not dropped.
            assert summary["throttled"] >= 1

    def test_zero_drop_under_concurrency(self):
        with ServeDaemon(0) as daemon:
            summary = run_swarm_sync(
                "127.0.0.1",
                daemon.port,
                requests=300,
                concurrency=100,
                population=8,
                seed=11,
            )
            assert summary["errors"] == 0
            assert summary["dropped"] == 0
            assert summary["ok"] == 300
            # The zipf mix means far fewer executions than requests.
            assert summary["by_source"].get("executed", 0) <= 8

    def test_disk_cache_shared_across_daemon_restarts(self):
        with tempfile.TemporaryDirectory() as cache_dir:
            with ServeDaemon(0, cache_dir=cache_dir) as daemon:
                _, cold = _post(daemon.url, _body())
                assert cold["source"] == "executed"
            with ServeDaemon(0, cache_dir=cache_dir) as daemon:
                _, warm = _post(daemon.url, _body())
                assert warm["source"] == "disk"
                assert warm["cycles"] == cold["cycles"]
                assert warm["stats"] == cold["stats"]

    def test_clean_shutdown_leaves_no_threads(self):
        import threading

        before = {t.name for t in threading.enumerate()}
        daemon = ServeDaemon(0).start()
        _post(daemon.url, _body())
        daemon.stop()
        leftover = {
            t.name
            for t in threading.enumerate()
            if t.name.startswith("repro-serve")
        } - before
        assert not leftover


# ----------------------------------------------------------------------
# Load generator internals


class TestLoadgen:
    def test_build_cells_deterministic_and_distinct(self):
        a = build_cells(12, seed=9)
        b = build_cells(12, seed=9)
        assert a == b
        keys = {
            (c["benchmark"], c["mechanism"], c["seed_salt"]) for c in a
        }
        assert len(keys) == 12

    def test_zipf_schedule_is_skewed_and_deterministic(self):
        picks = zipf_schedule(1000, 16, s=1.2, seed=4)
        assert picks == zipf_schedule(1000, 16, s=1.2, seed=4)
        assert all(0 <= p < 16 for p in picks)
        # Rank-0 must dominate any tail cell under zipf weighting.
        assert picks.count(0) > picks.count(15)
