"""Tests for the timing simulator: caches, DRAM, scheduler, models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import CacheConfig, GpuConfig
from repro.common.errors import SimulationError, TraceFormatError
from repro.sim import (
    BaggyBoundsTiming,
    BaselineTiming,
    DramModel,
    GPUShieldTiming,
    KernelTrace,
    LmiTiming,
    OpClass,
    SetAssociativeCache,
    SmSimulator,
    TraceInstruction,
    expand_stream,
    simulate,
)


def small_cache(size=1024, ways=2, line=64):
    return SetAssociativeCache(
        CacheConfig(size_bytes=size, line_bytes=line, ways=ways, hit_latency=10)
    )


class TestCache:
    def test_cold_miss_then_hit(self):
        cache = small_cache()
        assert not cache.access(0x1000)
        assert cache.access(0x1000)

    def test_same_line_different_bytes_hit(self):
        cache = small_cache(line=64)
        cache.access(0x1000)
        assert cache.access(0x103F)
        assert not cache.access(0x1040)

    def test_lru_eviction(self):
        cache = small_cache(size=256, ways=2, line=64)  # 2 sets
        sets = cache.config.num_sets
        way_stride = 64 * sets
        a, b, c = 0, way_stride, 2 * way_stride  # same set
        cache.access(a)
        cache.access(b)
        cache.access(a)  # a is now MRU
        cache.access(c)  # evicts b (LRU)
        assert cache.access(a)
        assert not cache.access(b)

    def test_probe_does_not_allocate(self):
        cache = small_cache()
        assert not cache.probe(0x1000)
        assert not cache.probe(0x1000)

    def test_flush(self):
        cache = small_cache()
        cache.access(0x1000)
        cache.flush()
        assert not cache.access(0x1000)

    def test_stats(self):
        cache = small_cache()
        cache.access(0x1000)
        cache.access(0x1000)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1 << 16), min_size=1,
                    max_size=200))
    def test_working_set_within_capacity_always_hits_second_pass(self, lines):
        cache = SetAssociativeCache(
            CacheConfig(size_bytes=1 << 20, line_bytes=64, ways=16,
                        hit_latency=1)
        )
        unique = sorted({line * 64 for line in lines})[:256]
        for address in unique:
            cache.access(address)
        assert all(cache.access(address) for address in unique)


class TestDram:
    def test_fixed_latency_unloaded(self):
        dram = DramModel(GpuConfig())
        assert dram.request(0, now=100) == 100 + dram.latency

    def test_channel_queuing_under_burst(self):
        dram = DramModel(GpuConfig(dram_channels=1))
        first = dram.request(0, now=0)
        second = dram.request(128, now=0)
        assert second > first  # bandwidth-limited

    def test_channels_are_independent(self):
        dram = DramModel(GpuConfig(dram_channels=8))
        a = dram.request(0 << 7, now=0)
        b = dram.request(1 << 7, now=0)
        assert a == b  # different channels, no queuing

    def test_stats(self):
        dram = DramModel(GpuConfig(dram_channels=1))
        dram.request(0, 0)
        dram.request(128, 0)
        assert dram.stats.requests == 2
        assert dram.stats.queue_delay_cycles > 0


class TestTraceFormat:
    def test_hint_on_memory_op_rejected(self):
        with pytest.raises(TraceFormatError):
            TraceInstruction(op=OpClass.LDG, checked=True, lines=(0,))

    def test_memory_op_needs_lines(self):
        with pytest.raises(TraceFormatError):
            TraceInstruction(op=OpClass.LDG)

    def test_alu_op_cannot_carry_lines(self):
        with pytest.raises(TraceFormatError):
            TraceInstruction(op=OpClass.INT, lines=(0,))

    def test_region_mix(self):
        trace = KernelTrace(
            name="t",
            warps=[[
                TraceInstruction(op=OpClass.LDG, lines=(0,)),
                TraceInstruction(op=OpClass.LDS, lines=(0,)),
                TraceInstruction(op=OpClass.LDS, lines=(0,)),
                TraceInstruction(op=OpClass.STL, lines=(0,)),
                TraceInstruction(op=OpClass.INT),
            ]],
        )
        mix = trace.memory_region_mix()
        assert mix == {"global": 0.25, "shared": 0.5, "local": 0.25}

    def test_empty_trace_mix(self):
        trace = KernelTrace(name="t", warps=[[TraceInstruction(op=OpClass.INT)]])
        assert trace.memory_region_mix() == {
            "global": 0.0, "shared": 0.0, "local": 0.0
        }

    def test_checked_count(self):
        trace = KernelTrace(
            name="t",
            warps=[[TraceInstruction(op=OpClass.INT, checked=True),
                    TraceInstruction(op=OpClass.INT)]],
        )
        assert trace.checked_count() == 1


def _trace(instrs, warps=1):
    return KernelTrace(name="t", warps=[list(instrs) for _ in range(warps)])


class TestScheduler:
    def test_independent_instructions_pipeline(self):
        # 100 independent INT ops from one warp: ~1 IPC issue.
        trace = _trace([TraceInstruction(op=OpClass.INT)] * 100)
        result = simulate(trace)
        assert result.cycles < 120

    def test_dependent_chain_serializes(self):
        trace = _trace([TraceInstruction(op=OpClass.INT, depends=True)] * 100)
        result = simulate(trace)
        assert result.cycles >= 400  # 4-cycle ALU latency per link

    def test_multithreading_hides_dependency_latency(self):
        stream = [TraceInstruction(op=OpClass.INT, depends=True)] * 100
        one = simulate(_trace(stream, warps=1))
        many = simulate(_trace(stream, warps=8))
        assert many.cycles < one.cycles * 8 * 0.5  # strong overlap

    def test_memory_latency_observable(self):
        trace = _trace(
            [TraceInstruction(op=OpClass.LDG, depends=True,
                              lines=(i * 128,)) for i in range(20)]
        )
        result = simulate(trace)
        assert result.cycles > 20 * 30  # at least L1-hit latency per dep load

    def test_empty_trace_rejected(self):
        with pytest.raises(SimulationError):
            simulate(KernelTrace(name="t", warps=[]))

    def test_deterministic(self):
        trace = _trace(
            [TraceInstruction(op=OpClass.LDG, lines=(i * 128,))
             for i in range(50)],
            warps=4,
        )
        assert simulate(trace).cycles == simulate(trace).cycles

    def test_stats_instruction_count(self):
        trace = _trace([TraceInstruction(op=OpClass.INT)] * 10, warps=3)
        assert simulate(trace).stats.instructions == 30

    def test_cache_hierarchy_counted(self):
        trace = _trace(
            [TraceInstruction(op=OpClass.LDG, lines=(0,))] * 2
        )
        result = simulate(trace)
        assert result.stats.l1_misses == 1  # cold miss
        assert result.stats.l1_hits == 1  # then hit


class TestTimingModels:
    def test_lmi_adds_latency_only_to_checked(self):
        model = LmiTiming()
        checked = TraceInstruction(op=OpClass.INT, checked=True)
        plain = TraceInstruction(op=OpClass.INT)
        assert model.extra_latency(checked, 0) == 3
        assert model.extra_latency(plain, 0) == 0

    def test_lmi_overhead_mostly_hidden_by_multithreading(self):
        # Worst case for hiding: identical dep-heavy INT streams in
        # lockstep across all warps.  Even here the OCU stays small.
        stream = [
            TraceInstruction(op=OpClass.INT, checked=(i % 4 == 0),
                             depends=(i % 3 == 0))
            for i in range(400)
        ]
        base = simulate(_trace(stream, warps=16), BaselineTiming())
        lmi = simulate(_trace(stream, warps=16), LmiTiming())
        assert lmi.cycles / base.cycles < 1.06

    def test_lmi_overhead_tiny_on_realistic_mix(self):
        from repro.workloads import synthesize_trace

        trace = synthesize_trace("bert", warps=16, instructions_per_warp=400)
        base = simulate(trace, BaselineTiming())
        lmi = simulate(trace, LmiTiming())
        assert lmi.cycles / base.cycles < 1.02

    def test_baggy_expands_checked_ops(self):
        model = BaggyBoundsTiming()
        checked = TraceInstruction(op=OpClass.INT, checked=True)
        expanded = list(model.expand(checked))
        assert len(expanded) == 1 + model.instructions_per_check
        assert all(i.op is OpClass.INT for i in expanded[1:])
        assert all(i.depends for i in expanded[1:])

    def test_baggy_leaves_unchecked_alone(self):
        model = BaggyBoundsTiming()
        plain = TraceInstruction(op=OpClass.FP)
        assert list(model.expand(plain)) == [plain]

    def test_expand_stream_length(self):
        model = BaggyBoundsTiming(instructions_per_check=5)
        stream = [TraceInstruction(op=OpClass.INT, checked=True)] * 3
        assert len(expand_stream(model, stream)) == 18

    def test_gpushield_rcache_hit_is_free(self):
        model = GPUShieldTiming()
        instr = TraceInstruction(op=OpClass.LDG, lines=(0,), buffer_ids=(1,))
        first = model.extra_latency(instr, 0)  # cold miss
        second = model.extra_latency(instr, 0)  # now cached
        assert first > 0
        assert second == 0

    def test_gpushield_ignores_shared_ops(self):
        model = GPUShieldTiming()
        instr = TraceInstruction(op=OpClass.LDS, lines=(0,), buffer_ids=(1,))
        assert model.extra_latency(instr, 0) == 0

    def test_gpushield_thrash_with_many_buffers(self):
        model = GPUShieldTiming()
        penalties = []
        for i in range(200):
            instr = TraceInstruction(
                op=OpClass.LDG, lines=(0,), buffer_ids=(i % 64,)
            )
            penalties.append(model.extra_latency(instr, 0))
        # Far more buffers than RCache entries: mostly misses.
        assert sum(1 for p in penalties[64:] if p > 0) > 100

    def test_gpushield_uses_memory_hierarchy_when_bound(self):
        simulator = SmSimulator(model=GPUShieldTiming())
        trace = _trace(
            [TraceInstruction(op=OpClass.LDG, lines=(i * 128,),
                              buffer_ids=(i % 3,)) for i in range(10)]
        )
        result = simulator.run(trace)
        assert result.cycles > 0
