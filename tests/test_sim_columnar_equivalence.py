"""Columnar-engine equivalence suite.

The vectorized data plane of :mod:`repro.sim.columnar` (and its
optional C executor in :mod:`repro.sim.native`) must be cycle-for-cycle
and stat-for-stat identical to the locked linear-scan ground truth in
:mod:`repro.sim.reference` — not just cycles and :class:`SimStats`,
but the L1/L2/RCache hit-miss counters and DRAM queueing state too,
because warm-cache semantics are part of the simulator contract.

Coverage:

* a seeded (profile × warps × instructions) grid × all four timing
  models × every execution path (native C, pure-Python columnar loop,
  pinned ``REPRO_SIM=reference`` scalar engine);
* ``REPRO_SIM`` plumbing (aliases, typo rejection, env default);
* warm-run parity (cache/DRAM state carried across runs);
* edge shapes the grid cannot hit: empty warp streams, >64-warp traces
  (past the native executor's bitmask width), ``hit_latency=1``
  geometry, custom timing models that force the scalar fallback;
* the :class:`~repro.sim.trace.TraceMemo` bound/namespacing contract;
* byte-identity of the experiment engine's ``.npz``-shipping fan-out.
"""

from __future__ import annotations

import json

import pytest

from repro.common.config import DEFAULT_GPU_CONFIG, CacheConfig, GpuConfig
from repro.common.errors import SimulationError
from repro.experiments import engine as engine_module
from repro.experiments.engine import SimJob, run_sim_jobs
from repro.sim import (
    KernelTrace,
    OpClass,
    SmSimulator,
    TraceInstruction,
    native_available,
    reference_simulate,
    resolve_sim_engine,
)
from repro.sim.columnar import expanded_columnar
from repro.sim.core import SIM_ENGINE_ENV, expanded_streams
from repro.sim.native import NATIVE_ENV
from repro.sim.reference import ReferenceSmSimulator
from repro.sim.timing import BaggyBoundsTiming, TimingModel
from repro.sim.trace import TRACE_MEMO_CAPACITY, TraceMemo, trace_memo
from repro.telemetry import EventKind, capture, chrome_trace, dumps, \
    metrics_json
from repro.telemetry.runtime import SAMPLE_ENV
from repro.workloads import synthesize_trace

# ----------------------------------------------------------------------
# The equivalence grid.

#: Seeded (benchmark, warps, instructions) corpus: ≥10 combos spanning
#: memory-heavy, compute-bound, uncoalesced and mixed profiles at
#: several occupancies (including a 16-warp fig12-shaped point).
CORPUS = [
    ("gaussian", 4, 260),
    ("gaussian", 16, 200),
    ("needle", 3, 280),
    ("LSTM", 5, 240),
    ("LSTM", 12, 180),
    ("bert", 4, 260),
    ("hotspot", 6, 220),
    ("lud_cuda", 3, 260),
    ("bfs", 7, 200),
    ("srad_v1", 2, 300),
    ("nn", 1, 200),
]

MODELS = ("baseline", "lmi", "gpushield", "baggy")

#: Execution paths under test.  ``native`` lets the C executor run
#: (skipped when no toolchain), ``python`` pins the pure-Python
#: columnar issue loop, ``scalar`` pins the historical event-heap
#: pipeline via ``REPRO_SIM=reference``.
PATHS = ("native", "python", "scalar")


def _combo_id(combo) -> str:
    benchmark, warps, instructions = combo
    return f"{benchmark}-w{warps}-i{instructions}"


def _pin_path(monkeypatch, path: str) -> str:
    """Pin one execution path via the environment; returns the engine."""
    if path == "native":
        if not native_available():
            pytest.skip("no C toolchain for the native executor")
        monkeypatch.delenv(NATIVE_ENV, raising=False)
        return "columnar"
    if path == "python":
        monkeypatch.setenv(NATIVE_ENV, "0")
        return "columnar"
    monkeypatch.setenv(SIM_ENGINE_ENV, "reference")
    return "reference"


def _state(sim) -> tuple:
    """Externally observable simulator state after a run."""
    rcache = getattr(sim.model, "rcache", None)
    return (
        (sim.l1.stats.hits, sim.l1.stats.misses),
        (sim.l2.stats.hits, sim.l2.stats.misses),
        (sim.dram.stats.requests, sim.dram.stats.queue_delay_cycles),
        None
        if rcache is None
        else (rcache.stats.hits, rcache.stats.misses),
    )


def _run_both(trace, mechanism, engine, config=DEFAULT_GPU_CONFIG, runs=1):
    """(got, want, got_state, want_state) after *runs* warm runs."""
    sim = SmSimulator(
        config, engine_module.model_factory(mechanism), engine=engine
    )
    ref = ReferenceSmSimulator(config, engine_module.model_factory(mechanism))
    for _ in range(runs):
        got = sim.run(trace)
        want = ref.run(trace)
    return got, want, _state(sim), _state(ref)


@pytest.mark.parametrize("path", PATHS)
@pytest.mark.parametrize("mechanism", MODELS)
@pytest.mark.parametrize("combo", CORPUS, ids=_combo_id)
def test_columnar_matches_reference(combo, mechanism, path, monkeypatch):
    benchmark, warps, instructions = combo
    engine = _pin_path(monkeypatch, path)
    trace = synthesize_trace(
        benchmark, warps=warps, instructions_per_warp=instructions
    )
    got, want, got_state, want_state = _run_both(trace, mechanism, engine)
    assert got.cycles == want.cycles
    assert got.stats == want.stats
    assert got.name == want.name
    assert got_state == want_state


@pytest.mark.parametrize("path", PATHS)
@pytest.mark.parametrize("mechanism", MODELS)
def test_warm_run_state_parity(mechanism, path, monkeypatch):
    """Cache/DRAM state must carry identically across warm runs."""
    engine = _pin_path(monkeypatch, path)
    trace = synthesize_trace("hotspot", warps=6, instructions_per_warp=220)
    got, want, got_state, want_state = _run_both(
        trace, mechanism, engine, runs=2
    )
    assert got.cycles == want.cycles
    assert got.stats == want.stats
    assert got_state == want_state


@pytest.mark.parametrize("path", PATHS)
def test_hit_latency_one_geometry(path, monkeypatch):
    """Degenerate hit_latency=1 geometry (tiny caches, few channels)."""
    engine = _pin_path(monkeypatch, path)
    config = GpuConfig(
        l1=CacheConfig(size_bytes=2048, line_bytes=128, ways=2,
                       hit_latency=1),
        l2=CacheConfig(size_bytes=8192, line_bytes=128, ways=4,
                       hit_latency=3),
        dram_latency=40,
        dram_channels=2,
    )
    trace = synthesize_trace("bfs", warps=5, instructions_per_warp=240)
    for mechanism in MODELS:
        got, want, got_state, want_state = _run_both(
            trace, mechanism, engine, config=config
        )
        assert got.cycles == want.cycles
        assert got.stats == want.stats
        assert got_state == want_state


@pytest.mark.parametrize("path", PATHS)
def test_empty_stream_warp(path, monkeypatch):
    """Zero-instruction warps must not wedge any engine."""
    engine = _pin_path(monkeypatch, path)
    busy = [
        TraceInstruction(op=OpClass.INT),
        TraceInstruction(op=OpClass.LDG, lines=(0x100,), depends=True),
        TraceInstruction(op=OpClass.FP, depends=True),
    ]
    trace = KernelTrace(name="edge", warps=[list(busy), [], list(busy)])
    got, want, got_state, want_state = _run_both(trace, "baseline", engine)
    assert got.cycles == want.cycles
    assert got.stats == want.stats
    assert got_state == want_state


def test_no_warps_raises(monkeypatch):
    for path in ("python", "scalar"):
        engine = _pin_path(monkeypatch, path)
        with pytest.raises(SimulationError):
            SmSimulator(engine=engine).run(KernelTrace(name="empty"))


def test_past_native_bitmask_width(monkeypatch):
    """>64 warps spill past one ready-mask word: the generated
    kernel's multi-word wide variant must stay cycle-exact (and the
    Python loop must agree when the kernel is unavailable)."""
    trace = synthesize_trace("gaussian", warps=65, instructions_per_warp=40)
    got, want, got_state, want_state = _run_both(trace, "lmi", "columnar")
    assert got.cycles == want.cycles
    assert got.stats == want.stats
    assert got_state == want_state


# ----------------------------------------------------------------------
# REPRO_SIM plumbing.


def test_resolve_sim_engine_aliases():
    assert resolve_sim_engine("") == "columnar"
    assert resolve_sim_engine("default") == "columnar"
    assert resolve_sim_engine("VECTOR") == "columnar"
    assert resolve_sim_engine("reference") == "reference"
    assert resolve_sim_engine(" scalar ") == "reference"


def test_resolve_sim_engine_env(monkeypatch):
    monkeypatch.delenv(SIM_ENGINE_ENV, raising=False)
    assert resolve_sim_engine() == "columnar"
    monkeypatch.setenv(SIM_ENGINE_ENV, "reference")
    assert resolve_sim_engine() == "reference"
    assert SmSimulator().engine == "reference"


def test_resolve_sim_engine_rejects_typos():
    with pytest.raises(SimulationError):
        resolve_sim_engine("columnarr")


# ----------------------------------------------------------------------
# Scalar fallback for timing models the lowering does not understand.


class _JitterTiming(TimingModel):
    """A custom model: perturbs latency, no stable expansion key."""

    def extra_latency(self, instr, now):  # noqa: D102
        return 2 if instr.op.is_memory else 0

    def expansion_key(self):  # noqa: D102
        return None


def test_custom_model_takes_scalar_path():
    trace = synthesize_trace("needle", warps=4, instructions_per_warp=200)
    got = SmSimulator(DEFAULT_GPU_CONFIG, _JitterTiming()).run(trace)
    want = ReferenceSmSimulator(DEFAULT_GPU_CONFIG, _JitterTiming()).run(
        trace
    )
    assert got.cycles == want.cycles
    assert got.stats == want.stats


# ----------------------------------------------------------------------
# TraceMemo: bounded, namespaced, legacy-attribute proof.


def test_trace_memo_is_bounded():
    memo = TraceMemo(capacity=4)
    for n in range(10):
        memo.put(("k", n), n)
    assert len(memo) == 4
    assert memo.get(("k", 9)) == 9
    assert memo.get(("k", 0)) is None
    with pytest.raises(ValueError):
        TraceMemo(capacity=0)


def test_trace_memo_namespaces_model_families():
    """Equal content keys from different model classes cannot alias."""

    class _OtherBaggy(BaggyBoundsTiming):
        pass

    trace = synthesize_trace("gaussian", warps=2, instructions_per_warp=120)
    a = expanded_streams(BaggyBoundsTiming(), trace)
    b = expanded_streams(_OtherBaggy(), trace)
    assert a is not b  # same ("baggy", n) key, distinct namespaces
    assert a is expanded_streams(BaggyBoundsTiming(), trace)  # memo hit
    ca = expanded_columnar(trace, BaggyBoundsTiming())
    cb = expanded_columnar(trace, _OtherBaggy())
    assert ca is not cb
    assert ca is expanded_columnar(trace, BaggyBoundsTiming())
    assert len(trace_memo(trace)) <= TRACE_MEMO_CAPACITY


def test_trace_memo_sweep_stays_bounded():
    """A parameter sweep over rewriting models cannot grow the memo
    past its cap (the historical unbounded ``_expansion_memo``)."""
    trace = synthesize_trace("needle", warps=2, instructions_per_warp=80)
    for n in range(1, 2 * TRACE_MEMO_CAPACITY + 2):
        expanded_streams(BaggyBoundsTiming(instructions_per_check=n), trace)
    assert len(trace_memo(trace)) <= TRACE_MEMO_CAPACITY


def test_trace_memo_ignores_legacy_attribute():
    """Stale ``_expansion_memo`` dicts (old pickled traces) are inert."""
    trace = synthesize_trace("nn", warps=2, instructions_per_warp=60)
    object.__setattr__(trace, "_expansion_memo", {("baggy", 4): "stale"})
    streams = expanded_streams(BaggyBoundsTiming(), trace)
    assert streams != "stale"
    assert all(isinstance(s, list) for s in streams)


# ----------------------------------------------------------------------
# Engine fan-out: the columnar .npz shipping keeps --jobs byte-identical.


def _job_rows(results):
    return [
        (r.job.key, r.cycles, r.stats.__dict__) for r in results
    ]


def test_jobs_npz_shipping_byte_identical(monkeypatch):
    """run_sim_jobs must merge worker results (shipped as columnar
    ``.npz``) into exactly the serial outcome, in submission order."""
    jobs = [
        SimJob(
            benchmark=benchmark,
            mechanism=mechanism,
            warps=3,
            instructions_per_warp=160,
        )
        for benchmark in ("gaussian", "needle", "LSTM")
        for mechanism in MODELS
    ]
    serial = run_sim_jobs(jobs, n_jobs=1)
    monkeypatch.setattr(engine_module.os, "cpu_count", lambda: 4)
    fanned = run_sim_jobs(jobs, n_jobs=4)
    assert _job_rows(fanned) == _job_rows(serial)


# ----------------------------------------------------------------------
# Fast-path telemetry: the columnar/native engines stay engaged with
# telemetry live, publish scalar-identical counters, and keep the
# metrics/trace artifacts byte-identical for any --jobs value.


def test_telemetry_enabled_keeps_columnar_engine(monkeypatch):
    """With telemetry live the fast path must not fall back to the
    scalar pipeline (the pre-fast-path behaviour this PR removed)."""
    trace = synthesize_trace("gaussian", warps=3, instructions_per_warp=160)

    def boom(self, _trace):
        raise AssertionError("telemetry forced the scalar fallback")

    with capture() as t:
        monkeypatch.setattr(SmSimulator, "_run_scalar", boom)
        result = SmSimulator(
            model=engine_module.model_factory("lmi")
        ).run(trace)
        assert result.cycles > 0
        assert t.registry.total("sim.instructions") \
            == result.stats.instructions
        assert any(
            e.kind is EventKind.WARP_ISSUE for e in t.recorder.events()
        )


@pytest.mark.parametrize("mechanism", MODELS)
def test_fast_path_counter_parity_with_scalar(mechanism, monkeypatch):
    """Registry snapshots from the fast and scalar paths must agree
    byte-for-byte: `_publish_fast_path` makes exactly the publish
    calls the scalar pipeline makes, over identically evolving
    SimStats/CacheStats."""
    trace = synthesize_trace("LSTM", warps=5, instructions_per_warp=240)

    def registry_json(engine):
        with capture() as t:
            SmSimulator(
                model=engine_module.model_factory(mechanism), engine=engine
            ).run(trace)
            return json.dumps(t.registry.snapshot(), sort_keys=True)

    assert registry_json("columnar") == registry_json("reference")


def test_fast_path_events_native_python_identical(monkeypatch):
    """The C executor and the pure-Python issue loop apply the same
    seed-derived sampling comb, so the recorded event rings are
    byte-identical under any REPRO_TELEMETRY_SAMPLE."""
    if not native_available():
        pytest.skip("no C toolchain for the native executor")
    trace = synthesize_trace("bfs", warps=6, instructions_per_warp=220)

    def ring(native, sample):
        if native:
            monkeypatch.delenv(NATIVE_ENV, raising=False)
        else:
            monkeypatch.setenv(NATIVE_ENV, "0")
        monkeypatch.setenv(SAMPLE_ENV, sample)
        with capture() as t:
            simulate_result = SmSimulator(
                model=engine_module.model_factory("lmi")
            ).run(trace)
            assert simulate_result.cycles > 0
            return [
                (e.seq, e.ts, dict(e.payload))
                for e in t.recorder.events()
            ]

    for sample in ("1", "1/7", "16"):
        native_ring = ring(True, sample)
        python_ring = ring(False, sample)
        assert native_ring, (sample, "empty ring")
        assert native_ring == python_ring, sample


def test_jobs_metrics_and_trace_export_byte_identical(monkeypatch):
    """--metrics/--trace artifacts from a telemetry-enabled fast-path
    run must be byte-identical for any --jobs value: workers ship
    registry snapshots + event rings, the parent replays them in
    submission order under identical per-job spans."""
    monkeypatch.setenv(SAMPLE_ENV, "1/3")
    jobs = [
        SimJob(
            benchmark=benchmark,
            mechanism=mechanism,
            warps=3,
            instructions_per_warp=160,
        )
        for benchmark in ("gaussian", "needle")
        for mechanism in ("baseline", "lmi")
    ]

    def artifacts(n_jobs):
        with capture() as t:
            run_sim_jobs(jobs, n_jobs=n_jobs)
            return (
                dumps(metrics_json(t.registry, recorder=t.recorder)),
                dumps(chrome_trace(t.tracer, t.recorder)),
            )

    serial = artifacts(1)
    monkeypatch.setattr(engine_module.os, "cpu_count", lambda: 4)
    fanned = artifacts(4)
    assert fanned[0] == serial[0]
    assert fanned[1] == serial[1]


def test_batch_width_exports_byte_identical(monkeypatch):
    """--metrics/--trace artifacts must be byte-identical at any
    serial batch width: the batched executor runs whole groups through
    one native FFI crossing but still publishes per job, in submission
    order, inside each job's span."""
    monkeypatch.setenv(SAMPLE_ENV, "1/3")
    jobs = [
        SimJob(
            benchmark=benchmark,
            mechanism=mechanism,
            warps=3,
            instructions_per_warp=160,
        )
        for benchmark in ("gaussian", "needle")
        for mechanism in MODELS
    ]

    def artifacts(batch):
        monkeypatch.setenv(engine_module.BATCH_ENV, str(batch))
        with capture() as t:
            results = run_sim_jobs(jobs)
            return (
                _job_rows(results),
                dumps(metrics_json(t.registry, recorder=t.recorder)),
                dumps(chrome_trace(t.tracer, t.recorder)),
            )

    unbatched = artifacts(1)
    for batch in (3, 8, 64):
        batched = artifacts(batch)
        assert batched[0] == unbatched[0], batch
        assert batched[1] == unbatched[1], batch
        assert batched[2] == unbatched[2], batch
