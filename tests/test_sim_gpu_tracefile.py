"""Tests for the multi-SM simulator and trace-file serialization."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import GpuConfig
from repro.common.errors import SimulationError, TraceFormatError
from repro.sim import (
    GpuSimulator,
    KernelTrace,
    LmiTiming,
    OpClass,
    TraceInstruction,
    dump_trace,
    load_trace,
    simulate,
)
from repro.workloads import synthesize_trace


def _mem(line, depends=False, buffer_id=0):
    return TraceInstruction(
        op=OpClass.LDG, depends=depends, lines=(line,), buffer_ids=(buffer_id,)
    )


class TestGpuSimulator:
    def test_warps_distributed_round_robin(self):
        trace = synthesize_trace("bert", warps=8, instructions_per_warp=100)
        result = GpuSimulator(num_sms=4).run(trace)
        assert len(result.per_sm) == 4
        assert result.total_instructions == trace.total_instructions

    def test_more_sms_than_warps(self):
        trace = synthesize_trace("bert", warps=3, instructions_per_warp=50)
        result = GpuSimulator(num_sms=16).run(trace)
        assert len(result.per_sm) == 3

    def test_cycles_is_slowest_sm(self):
        trace = synthesize_trace("bert", warps=6, instructions_per_warp=200)
        result = GpuSimulator(num_sms=3).run(trace)
        assert result.cycles == max(r.cycles for r in result.per_sm)
        assert result.load_imbalance >= 1.0

    def test_parallel_sms_beat_one_oversubscribed_sm(self):
        # 32 warps saturate one SM's issue port (>= 1 cycle per
        # instruction); split over 4 SMs the same work finishes far
        # sooner.  Latency-bound work with few warps would not scale —
        # per-warp dependency chains set the floor, as on real GPUs.
        trace = synthesize_trace("gaussian", warps=32,
                                 instructions_per_warp=400)
        one = GpuSimulator(num_sms=1).run(trace)
        four = GpuSimulator(num_sms=4).run(trace)
        assert one.cycles >= trace.total_instructions  # issue-saturated
        assert four.cycles < 0.6 * one.cycles

    def test_shared_dram_bandwidth_is_split_across_sms(self):
        """Same per-SM work, more active SMs -> each sees a smaller
        HBM bandwidth share (mean-field contention)."""
        streams = [
            [_mem(i * 128) for i in range(w * 500, w * 500 + 300)]
            for w in range(8)
        ]
        trace = KernelTrace(name="t", warps=streams)
        config = GpuConfig(dram_channels=1,
                           dram_bandwidth_bytes_per_cycle=32)
        wide = GpuSimulator(config, num_sms=1).run(trace)
        split = GpuSimulator(config, num_sms=8).run(trace)
        per_sm_split = max(r.cycles for r in split.per_sm)
        per_sm_wide = wide.per_sm[0].cycles
        # One SM with all warps streams at full bandwidth; each of the
        # 8 SMs gets 1/8 of it, so its single-warp stream slows down.
        assert split.cycles == per_sm_split
        assert per_sm_split > per_sm_wide / 8

    def test_model_factory_applied_per_sm(self):
        trace = synthesize_trace("gaussian", warps=4,
                                 instructions_per_warp=200)
        result = GpuSimulator(num_sms=2, model_factory=LmiTiming).run(trace)
        assert result.cycles > 0

    def test_empty_trace_rejected(self):
        with pytest.raises(SimulationError):
            GpuSimulator().run(KernelTrace(name="t", warps=[]))

    def test_zero_sms_rejected(self):
        with pytest.raises(SimulationError):
            GpuSimulator(num_sms=0)


class TestTraceFile:
    def test_roundtrip_through_string_buffer(self):
        trace = synthesize_trace("hotspot", warps=3, instructions_per_warp=150)
        buffer = io.StringIO()
        dump_trace(trace, buffer)
        buffer.seek(0)
        loaded = load_trace(buffer)
        assert loaded.name == trace.name
        assert loaded.warps == trace.warps

    def test_roundtrip_through_file(self, tmp_path):
        trace = synthesize_trace("needle", warps=2, instructions_per_warp=100)
        path = tmp_path / "needle.trace"
        dump_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.warps == trace.warps

    def test_replay_simulates_identically(self, tmp_path):
        trace = synthesize_trace("bfs", warps=4, instructions_per_warp=200)
        path = tmp_path / "bfs.trace"
        dump_trace(trace, path)
        original = simulate(trace)
        replayed = simulate(load_trace(path))
        assert replayed.cycles == original.cycles

    def test_empty_file_rejected(self):
        with pytest.raises(TraceFormatError):
            load_trace(io.StringIO(""))

    def test_garbage_header_rejected(self):
        with pytest.raises(TraceFormatError):
            load_trace(io.StringIO("not json\n"))

    def test_wrong_format_version_rejected(self):
        with pytest.raises(TraceFormatError):
            load_trace(io.StringIO('{"format": 99, "name": "x", "warps": 0}\n'))

    def test_warp_count_mismatch_rejected(self):
        with pytest.raises(TraceFormatError):
            load_trace(
                io.StringIO('{"format": 1, "name": "x", "warps": 2}\n[]\n')
            )

    def test_bad_record_rejected(self):
        stream = io.StringIO(
            '{"format": 1, "name": "x", "warps": 1}\n[["quantum", 0]]\n'
        )
        with pytest.raises(TraceFormatError):
            load_trace(stream)

    def test_memory_record_missing_lines_rejected(self):
        stream = io.StringIO(
            '{"format": 1, "name": "x", "warps": 1}\n[["ldg", 0]]\n'
        )
        with pytest.raises(TraceFormatError):
            load_trace(stream)

    @settings(max_examples=20, deadline=None)
    @given(st.sampled_from(["bert", "needle", "gaussian", "LSTM"]),
           st.integers(min_value=1, max_value=4))
    def test_roundtrip_property(self, name, warps):
        trace = synthesize_trace(name, warps=warps, instructions_per_warp=60)
        buffer = io.StringIO()
        dump_trace(trace, buffer)
        buffer.seek(0)
        assert load_trace(buffer).warps == trace.warps
