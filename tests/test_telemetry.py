"""Tests for the telemetry subsystem (registry, events, spans, export).

Covers the contract the observability layer promises:

* deterministic export — the same seed/workload produces byte-identical
  metrics and trace JSON;
* ring-buffer overflow accounting and sampling controls;
* the disabled-mode fast path allocates nothing;
* the Chrome-trace document is structurally valid for Perfetto;
* the integration points: LaunchResult stats, SimStats publication,
  the experiments CLI artifact flags.
"""

import json
import tracemalloc

import pytest

from repro import IRType, KernelBuilder, run_lmi_pass
from repro.exec.executor import GpuExecutor
from repro.mechanisms.base import MechanismStats, MechanismStatsSnapshot
from repro.mechanisms.lmi import LmiMechanism
from repro.sim.core import SimStats, simulate
from repro.sim.gpu import GpuSimulator
from repro.telemetry import (
    EventKind,
    FlightRecorder,
    MetricsRegistry,
    lint_prometheus,
    TELEMETRY,
    Telemetry,
    capture,
    chrome_trace,
    dumps,
    metrics_json,
    write_json,
)
from repro.telemetry.export import write_text_atomic
from repro.telemetry.runtime import (
    SAMPLE_ENV,
    resolve_sample_every,
    sample_phase,
)
from repro.telemetry.spans import LogicalClock, Tracer
from repro.workloads import synthesize_trace


# ----------------------------------------------------------------------
# Registry


class TestRegistry:
    def test_counter_inc_and_value(self):
        reg = MetricsRegistry()
        reg.counter("a.b").inc()
        reg.counter("a.b").inc(4)
        assert reg.value("a.b") == 5

    def test_labels_are_distinct_series(self):
        reg = MetricsRegistry()
        reg.counter("hits", space="global").inc(2)
        reg.counter("hits", space="heap").inc(3)
        assert reg.value("hits", space="global") == 2
        assert reg.value("hits", space="heap") == 3
        assert reg.total("hits") == 5

    def test_label_order_canonical(self):
        reg = MetricsRegistry()
        reg.counter("x", a=1, b=2).inc()
        reg.counter("x", b=2, a=1).inc()
        assert reg.value("x", a=1, b=2) == 2

    def test_gauge_and_histogram(self):
        reg = MetricsRegistry()
        reg.gauge("depth").set(7)
        hist = reg.histogram("sizes")
        for v in (1, 2, 300, 10**9):
            hist.observe(v)
        snap = reg.snapshot()
        assert snap["gauges"]["depth"] == 7
        h = snap["histograms"]["sizes"]
        assert h["count"] == 4
        assert h["buckets"]["+Inf"] == 4

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(TypeError):
            reg.gauge("m")

    def test_merge_adds_counters_sums_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(1)
        b.counter("c").inc(2)
        b.gauge("g").set(9)
        a.histogram("h").observe(1)
        b.histogram("h").observe(2)
        a.merge(b)
        assert a.value("c") == 3
        assert a.value("g") == 9
        assert a.histogram("h").count == 2

    def test_prometheus_exposition(self):
        reg = MetricsRegistry()
        reg.counter("ocu.extent_cleared", space="heap").inc(3)
        reg.histogram("alloc.size_bytes").observe(100)
        text = reg.to_prometheus()
        assert '# TYPE repro_ocu_extent_cleared counter' in text
        assert 'repro_ocu_extent_cleared{space="heap"} 3' in text
        assert 'repro_alloc_size_bytes_bucket{le="128"} 1' in text
        assert 'repro_alloc_size_bytes_count 1' in text


# ----------------------------------------------------------------------
# Flight recorder


class TestFlightRecorder:
    def test_ring_overflow_accounting(self):
        rec = FlightRecorder(4)
        for i in range(10):
            rec.emit(EventKind.ACCESS_CHECK, i, index=i)
        assert len(rec) == 4
        assert rec.emitted == 10
        assert rec.dropped == 6
        # The survivors are the most recent four.
        assert [e.payload["index"] for e in rec.events()] == [6, 7, 8, 9]

    def test_sampling_thins_routine_events(self):
        rec = FlightRecorder(100, sample_every=4)
        for i in range(16):
            rec.emit(EventKind.WARP_ISSUE, i)
        assert len(rec) == 4
        assert rec.sampled_out == 12

    def test_important_kinds_bypass_sampling(self):
        rec = FlightRecorder(100, sample_every=1000)
        for i in range(5):
            rec.emit(EventKind.EC_FAULT, i)
            rec.emit(EventKind.DETECTION, i)
        assert len(rec.events(EventKind.EC_FAULT)) == 5
        assert len(rec.events(EventKind.DETECTION)) == 5

    def test_disabled_emit_returns_none(self):
        rec = FlightRecorder(8, enabled=False)
        assert rec.emit(EventKind.ALLOC, 1) is None
        assert len(rec) == 0 and rec.emitted == 0

    def test_payload_may_shadow_parameter_names(self):
        rec = FlightRecorder(8)
        event = rec.emit(EventKind.ALLOC, 1, kind="x", ts=99)
        assert event.kind is EventKind.ALLOC
        assert event.payload["kind"] == "x" and event.payload["ts"] == 99


# ----------------------------------------------------------------------
# Disabled fast path


class TestDisabledFastPath:
    def test_disabled_emit_allocates_nothing(self):
        hub = Telemetry(enabled=False)
        hub.emit(EventKind.ACCESS_CHECK)  # warm anything lazy
        tracemalloc.start()
        before = tracemalloc.take_snapshot()
        for _ in range(1000):
            hub.emit(EventKind.ACCESS_CHECK)
        after = tracemalloc.take_snapshot()
        tracemalloc.stop()
        growth = sum(
            s.size_diff for s in after.compare_to(before, "filename")
            if s.size_diff > 0
        )
        # Transient kwargs frames aside, nothing may be retained.
        assert growth < 4096
        assert len(hub.recorder) == 0

    def test_global_hub_disabled_by_default(self):
        assert TELEMETRY.enabled is False

    def test_disabled_span_is_noop(self):
        hub = Telemetry(enabled=False)
        with hub.span("x"):
            pass
        assert hub.tracer.spans == []


# ----------------------------------------------------------------------
# Spans / tracer


class TestTracer:
    def test_logical_clock_is_deterministic(self):
        clock = LogicalClock()
        assert [clock.now() for _ in range(3)] == [1, 2, 3]
        assert LogicalClock(step=10).now() == 10

    def test_span_nesting_and_exception_safety(self):
        tracer = Tracer(LogicalClock())
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    assert tracer.depth == 2
                    raise ValueError("boom")
        assert tracer.depth == 0
        names = [s.name for s in tracer.spans]
        assert names == ["inner", "outer"]  # closed innermost-first
        for span in tracer.spans:
            assert span.end is not None and span.duration >= 0


# ----------------------------------------------------------------------
# Exporters


def _run_instrumented_workload():
    """A tiny deterministic workload touching executor + simulator."""
    b = KernelBuilder("telemetry_probe",
                      params=[("data", IRType.PTR), ("n", IRType.I64)])
    tid = b.thread_idx()
    slot = b.ptradd(b.param("data"), b.mul(tid, 4))
    b.store(slot, b.add(b.load(slot, width=4), 1), width=4)
    b.ret()
    module = b.module()
    run_lmi_pass(module)
    executor = GpuExecutor(module, LmiMechanism(), block_threads=4)
    data = executor.host_alloc(64)
    executor.launch({"data": data, "n": 4})
    trace = synthesize_trace("backprop", warps=2, instructions_per_warp=64,
                             seed_salt=7)
    simulate(trace)


class TestExport:
    def test_deterministic_byte_identical_export(self):
        artifacts = []
        for _ in range(2):
            with capture() as t:
                _run_instrumented_workload()
                metrics = dumps(metrics_json(t.registry, recorder=t.recorder))
                trace = dumps(chrome_trace(t.tracer, t.recorder))
            artifacts.append((metrics, trace))
        assert artifacts[0][0] == artifacts[1][0]
        assert artifacts[0][1] == artifacts[1][1]

    def test_metrics_document_shape(self):
        with capture() as t:
            _run_instrumented_workload()
            doc = metrics_json(t.registry, meta={"run": "unit"},
                               recorder=t.recorder)
        assert doc["schema"] == "repro.telemetry.metrics/v1"
        assert doc["meta"] == {"run": "unit"}
        counters = doc["metrics"]["counters"]
        assert counters.get("exec.launches{mechanism=lmi}") == 1
        assert any(k.startswith("sim.instructions") for k in counters)
        assert "# TYPE repro_exec_launches counter" in doc["prometheus"]
        assert doc["events"]["emitted"] > 0

    def test_chrome_trace_schema_valid_for_perfetto(self):
        with capture() as t:
            _run_instrumented_workload()
            doc = chrome_trace(t.tracer, t.recorder)
        # JSON round-trip must survive (Perfetto parses strict JSON).
        doc = json.loads(json.dumps(doc))
        events = doc["traceEvents"]
        assert isinstance(events, list) and events
        phases = {e["ph"] for e in events}
        assert phases <= {"X", "i", "M"}
        for event in events:
            assert isinstance(event["name"], str)
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            if event["ph"] == "X":
                assert event["dur"] >= 0 and event["ts"] >= 0
            if event["ph"] == "i":
                assert event["s"] == "t"
        # Timestamps are sorted, which keeps the exporter deterministic.
        ts = [e["ts"] for e in events if "ts" in e]
        assert ts == sorted(ts)
        assert any(e["name"].startswith("launch:") for e in events)

    def test_capture_restores_previous_state(self):
        before = (TELEMETRY.enabled, TELEMETRY.registry)
        with capture():
            TELEMETRY.counter("scratch").inc()
            assert TELEMETRY.enabled
        assert (TELEMETRY.enabled, TELEMETRY.registry) == before
        assert TELEMETRY.registry.value("scratch") == 0


# ----------------------------------------------------------------------
# Stats views & integration


class TestStatsViews:
    def test_mechanism_stats_start_at_zero_and_accumulate(self):
        stats = MechanismStats()
        assert stats.checks == 0 and stats.detections == 0
        stats.checks += 1
        stats.checks += 1
        stats.tagged_pointers = 5
        assert stats.checks == 2 and stats.tagged_pointers == 5
        assert stats.as_dict()["checks"] == 2

    def test_snapshot_is_immutable_copy(self):
        stats = MechanismStats()
        stats.checks += 3
        snap = stats.snapshot()
        stats.checks += 1
        assert snap.checks == 3
        assert isinstance(snap, MechanismStatsSnapshot)
        assert "checks=3" in snap.summary()

    def test_publish_stats_is_delta_based(self):
        mech = LmiMechanism()
        mech.stats.checks += 4
        registry = MetricsRegistry()
        mech.publish_stats(registry)
        mech.publish_stats(registry)  # no growth -> no double-count
        assert registry.value("mechanism.checks", mechanism="lmi") == 4
        mech.stats.checks += 1
        mech.publish_stats(registry)
        assert registry.value("mechanism.checks", mechanism="lmi") == 5

    def test_launch_result_carries_mechanism_stats(self):
        b = KernelBuilder("stats_probe", params=[("p", IRType.PTR)])
        b.store(b.param("p"), b.const(1, IRType.I64), width=4)
        b.ret()
        module = b.module()
        run_lmi_pass(module)
        executor = GpuExecutor(module, LmiMechanism(), block_threads=1)
        pointer = executor.host_alloc(16)
        result = executor.launch({"p": pointer})
        assert result.mechanism == "lmi"
        assert result.mechanism_stats.checks > 0
        line = result.stats_line()
        assert line.startswith("[lmi] ok:") and "checks=" in line


class TestSimTelemetry:
    def test_sim_stats_new_counters_populate(self):
        trace = synthesize_trace("bfs", warps=2,
                                 instructions_per_warp=128, seed_salt=3)
        result = simulate(trace)
        stats = result.stats
        assert stats.extra_transactions > 0
        assert (stats.lsu_serialization_cycles
                == 4 * stats.extra_transactions)

    def test_sim_stats_publish(self):
        stats = SimStats(instructions=10, issue_stall_cycles=2,
                         lsu_serialization_cycles=8, extra_transactions=2)
        reg = MetricsRegistry()
        stats.publish(reg, trace="t")
        assert reg.value("sim.instructions", trace="t") == 10
        assert reg.value("sim.lsu_serialization_cycles", trace="t") == 8
        assert reg.value("sim.extra_transactions", trace="t") == 2

    def test_gpu_result_summary_and_aggregates(self):
        trace = synthesize_trace("hotspot", warps=8,
                                 instructions_per_warp=64, seed_salt=11)
        with capture() as t:
            result = GpuSimulator(num_sms=2).run(trace)
            sim_spans = [s for s in t.tracer.spans
                         if s.name.startswith("sim:")]
            assert len(sim_spans) == 2
            assert {s.tid for s in sim_spans} == {0, 1}
            assert t.registry.total("sim.instructions") \
                == result.total_instructions
        assert result.extra_transactions >= 0
        assert result.issue_stall_cycles >= 0
        summary = result.format_summary()
        assert "cycles=" in summary and "lsu_serialization=" in summary

    def test_warp_events_recorded_when_enabled(self):
        trace = synthesize_trace("gaussian", warps=2,
                                 instructions_per_warp=32, seed_salt=5)
        with capture() as t:
            simulate(trace)
            kinds = {e.kind for e in t.recorder.events()}
        assert EventKind.WARP_ISSUE in kinds


# ----------------------------------------------------------------------
# CLI artifacts


class TestCliArtifacts:
    def test_metrics_and_trace_flags_write_artifacts(self, tmp_path, capsys):
        from repro.experiments.__main__ import main
        metrics = tmp_path / "m.json"
        trace = tmp_path / "t.json"
        assert main(["--fast", "fig4",
                     f"--metrics={metrics}", "--trace", str(trace)]) == 0
        capsys.readouterr()
        mdoc = json.loads(metrics.read_text())
        tdoc = json.loads(trace.read_text())
        assert mdoc["schema"] == "repro.telemetry.metrics/v1"
        assert mdoc["meta"]["experiments"] == ["fig4"]
        assert any(e["ph"] == "X" and e["name"] == "experiment:fig4"
                   for e in tdoc["traceEvents"])
        assert TELEMETRY.enabled is False  # switched back off afterwards

    def test_missing_flag_value_is_an_error(self, capsys):
        from repro.experiments.__main__ import main
        assert main(["fig4", "--metrics"]) == 2
        assert "requires a PATH" in capsys.readouterr().out

    def test_verbose_telemetry_prints_summary(self, capsys):
        from repro.experiments.__main__ import main
        assert main(["--fast", "fig4", "--verbose-telemetry"]) == 0
        assert "telemetry:" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Prometheus exposition lint


# The exposition grammar itself lives in the registry module
# (promoted so the live /metrics endpoint and CI share one gate).


class TestPrometheusLint:
    def test_one_help_type_pair_per_family(self):
        reg = MetricsRegistry()
        reg.counter("sim.l1_misses", trace="a").inc(1)
        reg.counter("sim.l1_misses", trace="b").inc(2)
        reg.histogram("alloc.size_bytes", unit="b").observe(7)
        reg.histogram("alloc.size_bytes", unit="kb").observe(9)
        text = reg.to_prometheus()
        assert text.count("# HELP repro_sim_l1_misses ") == 1
        assert text.count("# TYPE repro_sim_l1_misses counter") == 1
        assert text.count("# TYPE repro_alloc_size_bytes histogram") == 1

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter(
            "odd", path="a\\b", quote='say "hi"', multi="x\ny"
        ).inc()
        text = reg.to_prometheus()
        assert r'path="a\\b"' in text
        assert r'quote="say \"hi\""' in text
        assert r'multi="x\ny"' in text

    def test_help_text_escapes_backslash(self):
        reg = MetricsRegistry()
        reg.counter("a\\b.c").inc()
        text = reg.to_prometheus()
        assert "# HELP repro_a_b_c a\\\\b.c" in text

    def test_histogram_inf_bucket_matches_count(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat", unit="l1")
        for v in (1, 3, 10**9):
            hist.observe(v)
        text = reg.to_prometheus()
        assert 'repro_lat_bucket{unit="l1",le="+Inf"} 3' in text
        assert 'repro_lat_count{unit="l1"} 3' in text

    def test_every_line_matches_exposition_grammar(self):
        reg = MetricsRegistry()
        reg.counter("sim.instructions", trace='we"ird\n\\x').inc(12)
        reg.gauge("depth").set(-3.5)
        reg.histogram("sizes", space="heap").observe(42)
        assert lint_prometheus(reg.to_prometheus()) == []

    def test_lint_reports_violating_lines(self):
        bad = "this is not exposition format\n# HELP ok ok\nok 1\n"
        assert lint_prometheus(bad) == ["this is not exposition format"]


# ----------------------------------------------------------------------
# Atomic artifact writes


class TestAtomicWrites:
    def test_write_json_creates_parent_dirs_and_leaves_no_tmp(
        self, tmp_path
    ):
        target = tmp_path / "deep" / "nested" / "metrics.json"
        write_json(str(target), {"a": 1})
        assert json.loads(target.read_text()) == {"a": 1}
        leftovers = [
            p for p in target.parent.iterdir() if p.name != target.name
        ]
        assert leftovers == []

    def test_write_text_atomic_replaces_existing(self, tmp_path):
        target = tmp_path / "report.html"
        write_text_atomic(str(target), "first")
        write_text_atomic(str(target), "second")
        assert target.read_text() == "second"
        assert [p.name for p in tmp_path.iterdir()] == ["report.html"]


# ----------------------------------------------------------------------
# Fast-path event sampling


class TestSampling:
    def test_resolve_sample_every_spellings(self, monkeypatch):
        assert resolve_sample_every("1/16") == 16
        assert resolve_sample_every("8") == 8
        assert resolve_sample_every("") == 1
        monkeypatch.setenv(SAMPLE_ENV, "1/32")
        assert resolve_sample_every() == 32
        monkeypatch.delenv(SAMPLE_ENV)
        assert resolve_sample_every(default=4) == 4

    def test_resolve_sample_every_rejects_typos(self):
        for bad in ("banana", "2/3", "1/0", "0", "-4", "1/x"):
            with pytest.raises(ValueError):
                resolve_sample_every(bad)

    def test_sample_phase_stable_across_processes(self):
        # sha256-derived, so these constants hold for every
        # PYTHONHASHSEED and on every machine (the --jobs contract).
        assert sample_phase("gaussian", 1024) == 146
        assert sample_phase("needle", 1024) == 162
        assert sample_phase("gaussian", 1) == 0
        phase = sample_phase("gaussian", 7)
        assert 0 <= phase < 7
        assert phase == sample_phase("gaussian", 7)

    def test_sampled_fast_path_events_identical_across_runs(
        self, monkeypatch
    ):
        monkeypatch.setenv(SAMPLE_ENV, "1/5")
        trace = synthesize_trace(
            "gaussian", warps=4, instructions_per_warp=240
        )

        def issue_events():
            with capture() as t:
                simulate(trace)
                return [
                    (e.seq, e.ts, dict(e.payload))
                    for e in t.recorder.events(EventKind.WARP_ISSUE)
                ]

        first = issue_events()
        assert first, "sampling 1/5 must keep some warp-issue events"
        assert issue_events() == first
        # A different comb keeps a different (smaller) set.
        monkeypatch.setenv(SAMPLE_ENV, "1/50")
        sparser = issue_events()
        assert len(sparser) < len(first)

    def test_disabled_sim_run_records_nothing(self):
        trace = synthesize_trace(
            "gaussian", warps=2, instructions_per_warp=64
        )
        assert TELEMETRY.enabled is False
        before = (
            len(TELEMETRY.registry),
            len(TELEMETRY.recorder),
            TELEMETRY.recorder.emitted,
            len(TELEMETRY.tracer.spans),
        )
        simulate(trace)
        after = (
            len(TELEMETRY.registry),
            len(TELEMETRY.recorder),
            TELEMETRY.recorder.emitted,
            len(TELEMETRY.tracer.spans),
        )
        assert after == before
