"""Content-addressed trace cache: keys, LRU layer, disk layer."""

from __future__ import annotations

import dataclasses
import os
import pickle

import pytest

from repro.sim import KernelTrace, load_trace_npz
from repro.workloads import (
    TraceCache,
    cached_trace,
    configure_trace_cache,
    profile,
    profile_fingerprint,
    synthesize_trace,
    trace_key,
)
from repro.workloads.trace_cache import TRACE_CACHE


@pytest.fixture(autouse=True)
def _clean_global_cache():
    """Keep the process-global cache pristine around every test."""
    saved_dir = TRACE_CACHE.disk_dir
    configure_trace_cache(clear=True, disk_dir="")
    yield
    TRACE_CACHE.disk_dir = saved_dir
    TRACE_CACHE.clear()


# ----------------------------------------------------------------------
# Keys


def test_trace_key_is_stable_and_parameter_sensitive():
    spec = profile("gaussian")
    base = trace_key(spec, warps=4, instructions_per_warp=100)
    assert base == trace_key(spec, warps=4, instructions_per_warp=100)
    assert base != trace_key(spec, warps=5, instructions_per_warp=100)
    assert base != trace_key(spec, warps=4, instructions_per_warp=101)
    assert base != trace_key(
        spec, warps=4, instructions_per_warp=100, seed_salt=1
    )


def test_profile_edit_changes_fingerprint_and_key():
    spec = profile("gaussian")
    edited = dataclasses.replace(spec, dep_rate=spec.dep_rate / 2)
    assert profile_fingerprint(edited) != profile_fingerprint(spec)
    assert trace_key(edited, warps=4, instructions_per_warp=100) != trace_key(
        spec, warps=4, instructions_per_warp=100
    )


# ----------------------------------------------------------------------
# In-process LRU layer


def test_memory_hit_returns_same_object():
    cache = TraceCache()
    first = cache.get_or_synthesize("needle", warps=2, instructions_per_warp=80)
    second = cache.get_or_synthesize("needle", warps=2, instructions_per_warp=80)
    assert second is first
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1
    assert cache.stats.hit_rate == 0.5


def test_cached_trace_matches_direct_synthesis():
    via_cache = cached_trace("LSTM", warps=2, instructions_per_warp=60)
    direct = synthesize_trace("LSTM", warps=2, instructions_per_warp=60)
    assert via_cache.name == direct.name
    assert via_cache.warps == direct.warps


def test_lru_eviction_order():
    cache = TraceCache(capacity=2)
    cache.get_or_synthesize("gaussian", warps=2, instructions_per_warp=50)
    cache.get_or_synthesize("needle", warps=2, instructions_per_warp=50)
    # Touch gaussian so needle is the LRU victim.
    cache.get_or_synthesize("gaussian", warps=2, instructions_per_warp=50)
    cache.get_or_synthesize("hotspot", warps=2, instructions_per_warp=50)
    assert len(cache) == 2
    assert cache.stats.evictions == 1
    before = cache.stats.misses
    cache.get_or_synthesize("gaussian", warps=2, instructions_per_warp=50)
    assert cache.stats.misses == before  # survivor still resident
    cache.get_or_synthesize("needle", warps=2, instructions_per_warp=50)
    assert cache.stats.misses == before + 1  # victim re-synthesized


def test_capacity_shrink_evicts():
    cache = TraceCache(capacity=4)
    for name in ("gaussian", "needle", "hotspot"):
        cache.get_or_synthesize(name, warps=2, instructions_per_warp=40)
    cache.configure(capacity=1)
    assert len(cache) == 1
    with pytest.raises(ValueError):
        cache.configure(capacity=0)


# ----------------------------------------------------------------------
# Disk layer


def test_disk_roundtrip(tmp_path):
    writer = TraceCache(disk_dir=str(tmp_path))
    trace = writer.get_or_synthesize("bert", warps=2, instructions_per_warp=60)
    assert writer.stats.disk_writes == 1
    assert list(tmp_path.glob("trace-*.npz"))  # columnar container

    reader = TraceCache(disk_dir=str(tmp_path))
    loaded = reader.get_or_synthesize("bert", warps=2, instructions_per_warp=60)
    assert reader.stats.disk_hits == 1
    assert reader.stats.disk_writes == 0
    assert loaded.name == trace.name
    assert loaded.warps == trace.warps


def test_corrupt_disk_entry_falls_back_to_synthesis(tmp_path):
    spec = profile("gaussian")
    key = trace_key(spec, warps=2, instructions_per_warp=50)
    (tmp_path / f"trace-{key}.npz").write_bytes(b"not an npz")
    cache = TraceCache(disk_dir=str(tmp_path))
    trace = cache.get_or_synthesize(
        "gaussian", warps=2, instructions_per_warp=50
    )
    assert isinstance(trace, KernelTrace)
    assert cache.stats.disk_hits == 0
    # The good trace replaced the corrupt file.
    assert load_trace_npz(
        tmp_path / f"trace-{key}.npz"
    ).name == trace.name


def test_foreign_pickle_rejected(tmp_path):
    spec = profile("needle")
    key = trace_key(spec, warps=2, instructions_per_warp=50)
    (tmp_path / f"trace-{key}.pkl").write_bytes(
        pickle.dumps({"not": "a trace"})
    )
    cache = TraceCache(disk_dir=str(tmp_path))
    trace = cache.get_or_synthesize(
        "needle", warps=2, instructions_per_warp=50
    )
    assert isinstance(trace, KernelTrace)
    assert cache.stats.disk_hits == 0


def test_env_variable_seeds_global_disk_dir(tmp_path, monkeypatch):
    """REPRO_TRACE_CACHE wires the disk layer at import time."""
    import importlib

    import repro.workloads.trace_cache as module

    original = module.TRACE_CACHE
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
    try:
        reloaded = importlib.reload(module)
        assert reloaded.TRACE_CACHE.disk_dir == str(tmp_path)
        reloaded.cached_trace("nn", warps=2, instructions_per_warp=40)
        assert list(tmp_path.glob("trace-*.npz"))
    finally:
        # Reload re-executed the module in the same namespace; put the
        # original global cache back so module-level functions (whose
        # __globals__ is that namespace) keep using it.
        module.TRACE_CACHE = original


def test_configure_trace_cache_returns_global():
    cache = configure_trace_cache(capacity=8)
    assert cache is TRACE_CACHE
    assert cache.capacity == 8


# ----------------------------------------------------------------------
# Thread-safety (the repro.serve executor shape)


def test_sixteen_thread_hammer_synthesizes_each_key_once(tmp_path):
    """16 threads × mixed keys: every key synthesized at most once,
    every caller gets the canonical trace object, counters balance."""
    import threading
    from unittest import mock

    from repro.workloads import synthetic

    cache = TraceCache(capacity=64, disk_dir=str(tmp_path))
    keys = [("nn", 2, 40, salt) for salt in range(8)]
    synth_counts = {}
    count_lock = threading.Lock()
    real_synthesize = synthetic.synthesize_trace

    def counting_synthesize(benchmark, **kwargs):
        with count_lock:
            marker = (benchmark, kwargs.get("seed_salt", 0))
            synth_counts[marker] = synth_counts.get(marker, 0) + 1
        return real_synthesize(benchmark, **kwargs)

    results = [None] * 16
    errors = []
    start = threading.Barrier(16, timeout=10)

    def worker(slot):
        try:
            start.wait()
            benchmark, warps, instructions, salt = keys[slot % len(keys)]
            results[slot] = cache.get_or_synthesize(
                benchmark,
                warps=warps,
                instructions_per_warp=instructions,
                seed_salt=salt,
            )
        except Exception as exc:  # pragma: no cover - failure detail
            errors.append(exc)

    import repro.workloads.trace_cache as trace_cache_module

    # The cache module binds the symbol at import time, so patch it
    # there rather than on repro.workloads.synthetic.
    with mock.patch.object(
        trace_cache_module, "synthesize_trace", counting_synthesize
    ):
        threads = [
            threading.Thread(target=worker, args=(slot,)) for slot in range(16)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
    assert not errors
    assert all(trace is not None for trace in results)
    # Two workers share each key: the winner synthesized, the loser got
    # the *same object* back.
    for slot in range(8):
        assert results[slot] is results[slot + 8]
    # No key was synthesized twice (per-key locking held).
    assert all(count == 1 for count in synth_counts.values())
    assert len(synth_counts) == len(keys)
    # Counter conservation: every lookup is a hit or a miss, and misses
    # equal the number of distinct syntheses.
    assert cache.stats.lookups == 16
    assert cache.stats.misses == len(keys)
    assert cache.stats.hits == 16 - len(keys)
    assert cache.stats.disk_writes == len(keys)
