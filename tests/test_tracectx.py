"""Request-forensics suite: trace ids, waterfalls, structured logs.

Locks the contracts of :mod:`repro.telemetry.tracectx` and
:mod:`repro.telemetry.log`:

* trace ids are ``rtx-`` + 16 hex chars, deterministic in
  (``REPRO_TRACE_SEED``, mint order), and unique within a sequence;
* :class:`TraceStore` lays stages sequentially, backs any gap between
  the stage sum and the measured total into a synthetic
  ``unattributed`` stage (the waterfall always sums to the honest
  end-to-end latency), and evicts oldest-first at capacity;
* :class:`StructuredLog` filters by minimum severity / trace / event,
  defaults the trace id from the contextvar binding, and counts drops;
* the engine tags every executed :class:`JobResult` with its trace id
  — on the plain serial path, the batched path, and across the
  fabric's forked work-stealing pool, where a cell re-dispatched
  after a worker death keeps its *original* trace id (the id rides
  the task tuple, and redispatch reuses the tuple);
* tracing is pure diagnostics: ``--metrics``/``--trace`` exports are
  byte-identical with tracing on vs ``REPRO_TRACE_DISABLE=1``, and no
  export ever contains an ``rtx-`` id (the leak grep).
"""

from __future__ import annotations

import json
import re

import pytest

from repro.cli import format_trace
from repro.experiments import engine as engine_module
from repro.experiments.engine import (
    TRACE_DISABLE_ENV,
    SimJob,
    run_sim_jobs,
)
from repro.experiments.fabric import (
    CELL_CACHE_ENV,
    FAIL_CELL_ENV,
    FAIL_DIR_ENV,
    fabric_counters,
    reset_fabric_counters,
)
from repro.telemetry.export import chrome_trace, metrics_json
from repro.telemetry.log import LOG, LOG_SCHEMA, StructuredLog
from repro.telemetry.runtime import capture
from repro.telemetry.tracectx import (
    STAGE_ORDER,
    TRACE_SCHEMA,
    TRACE_SEED_ENV,
    TRACES,
    TraceStore,
    bind_trace,
    current_trace_id,
    new_trace_id,
    record_job_trace,
    reset_trace_ids,
)

TRACE_ID_RE = re.compile(r"^rtx-[0-9a-f]{16}$")
LEAK_RE = re.compile(r"rtx-[0-9a-f]{16}")


@pytest.fixture(autouse=True)
def _clean_tracing(monkeypatch):
    """Fresh id sequence, empty stores, no leaked env between tests."""
    for name in (
        TRACE_SEED_ENV, TRACE_DISABLE_ENV,
        CELL_CACHE_ENV, FAIL_CELL_ENV, FAIL_DIR_ENV,
    ):
        monkeypatch.delenv(name, raising=False)
    reset_trace_ids()
    TRACES.clear()
    LOG.clear()
    reset_fabric_counters()
    yield
    reset_trace_ids()
    TRACES.clear()
    LOG.clear()
    reset_fabric_counters()


# ----------------------------------------------------------------------
# Trace ids


class TestTraceIds:
    def test_format_and_uniqueness(self):
        ids = [new_trace_id() for _ in range(64)]
        assert all(TRACE_ID_RE.match(t) for t in ids)
        assert len(set(ids)) == len(ids)

    def test_deterministic_replay(self):
        first = [new_trace_id() for _ in range(8)]
        reset_trace_ids()
        assert [new_trace_id() for _ in range(8)] == first

    def test_seed_env_changes_the_sequence(self, monkeypatch):
        base = [new_trace_id() for _ in range(4)]
        monkeypatch.setenv(TRACE_SEED_ENV, "42")
        reset_trace_ids()
        seeded = [new_trace_id() for _ in range(4)]
        assert seeded != base
        reset_trace_ids()
        assert [new_trace_id() for _ in range(4)] == seeded

    def test_bind_trace_nests_and_restores(self):
        assert current_trace_id() is None
        with bind_trace("rtx-" + "0" * 16):
            assert current_trace_id() == "rtx-" + "0" * 16
            with bind_trace("rtx-" + "1" * 16):
                assert current_trace_id() == "rtx-" + "1" * 16
            assert current_trace_id() == "rtx-" + "0" * 16
        assert current_trace_id() is None


# ----------------------------------------------------------------------
# TraceStore waterfalls


class TestTraceStore:
    def test_sequential_layout_and_exact_sum(self):
        store = TraceStore()
        store.begin("rtx-a", source="executed")
        store.stage("rtx-a", "admission", 0.001)
        store.stage("rtx-a", "sim", 0.010)
        store.finish("rtx-a", 0.0125)
        doc = store.get("rtx-a")
        assert doc["schema"] == TRACE_SCHEMA
        assert doc["complete"] is True
        names = [s["stage"] for s in doc["stages"]]
        assert names == ["admission", "sim", "unattributed"]
        # Sequential offsets: each stage starts where the last ended.
        offsets = [s["offset_ms"] for s in doc["stages"]]
        assert offsets == [0.0, 1.0, 11.0]
        # The synthetic gap stage makes the sum exactly the total.
        total = sum(s["duration_ms"] for s in doc["stages"])
        assert total == pytest.approx(doc["total_ms"], abs=1e-6)
        assert doc["total_ms"] == pytest.approx(12.5)

    def test_finish_without_total_sums_stages(self):
        store = TraceStore()
        store.begin("rtx-b")
        store.stage("rtx-b", "sim", 0.004)
        store.finish("rtx-b")
        doc = store.get("rtx-b")
        assert doc["total_ms"] == pytest.approx(4.0)
        assert [s["stage"] for s in doc["stages"]] == ["sim"]

    def test_attrs_merge_and_none_dropped(self):
        store = TraceStore()
        store.begin("rtx-c", source="executed", tenant=None)
        store.annotate("rtx-c", digest="abc")
        doc = store.get("rtx-c")
        assert doc["attrs"] == {"source": "executed", "digest": "abc"}

    def test_eviction_oldest_first(self):
        store = TraceStore(capacity=3)
        for index in range(5):
            store.begin(f"rtx-{index}")
        assert len(store) == 3
        assert store.get("rtx-0") is None
        assert store.get("rtx-4") is not None
        recent = store.recent()
        assert [d["trace_id"] for d in recent] == [
            "rtx-4", "rtx-3", "rtx-2"
        ]

    def test_get_returns_a_copy(self):
        store = TraceStore()
        store.begin("rtx-d")
        store.stage("rtx-d", "sim", 0.001)
        doc = store.get("rtx-d")
        doc["stages"].append({"stage": "bogus"})
        doc["attrs"]["bogus"] = True
        fresh = store.get("rtx-d")
        assert len(fresh["stages"]) == 1
        assert fresh["attrs"] == {}

    def test_record_job_trace_orders_by_stage_rank(self):
        store = TraceStore()
        record_job_trace(
            "rtx-e",
            phases={"sim": 0.003, "trace_expand": 0.001, "compile": 0.002},
            attrs={"origin": "engine.serial"},
            store=store,
        )
        doc = store.get("rtx-e")
        names = [s["stage"] for s in doc["stages"]]
        assert names == ["trace_expand", "compile", "sim"]
        ranks = [STAGE_ORDER.index(n) for n in names]
        assert ranks == sorted(ranks)
        assert doc["complete"] is True


# ----------------------------------------------------------------------
# Structured log ring


class TestStructuredLog:
    def test_levels_filter_is_a_floor(self):
        log = StructuredLog()
        log.debug("a")
        log.info("b")
        log.warning("c")
        log.error("d")
        events = [r["event"] for r in log.records(level="warning")]
        assert events == ["c", "d"]
        assert len(log.records()) == 4

    def test_trace_and_event_filters(self):
        log = StructuredLog()
        log.info("hit", trace_id="rtx-x")
        log.info("hit", trace_id="rtx-y")
        log.info("miss", trace_id="rtx-x")
        assert len(log.records(trace_id="rtx-x")) == 2
        assert len(log.records(trace_id="rtx-x", event="hit")) == 1

    def test_trace_id_defaults_from_binding(self):
        log = StructuredLog()
        with bind_trace("rtx-" + "a" * 16):
            record = log.info("bound")
        assert record["trace_id"] == "rtx-" + "a" * 16
        unbound = log.info("unbound")
        assert "trace_id" not in unbound

    def test_unknown_level_coerced_never_raises(self):
        log = StructuredLog()
        record = log.log("shouty", "event")
        assert record["level"] == "info"

    def test_ring_drops_oldest_and_counts(self):
        log = StructuredLog(capacity=3)
        for index in range(5):
            log.info(f"e{index}")
        document = log.document()
        assert document["schema"] == LOG_SCHEMA
        assert document["dropped"] == 2
        assert [r["event"] for r in document["records"]] == [
            "e2", "e3", "e4"
        ]

    def test_limit_keeps_newest(self):
        log = StructuredLog()
        for index in range(10):
            log.info(f"e{index}")
        kept = log.records(limit=3)
        assert [r["event"] for r in kept] == ["e7", "e8", "e9"]

    def test_dump_jsonl_round_trips(self):
        log = StructuredLog()
        log.info("one", answer=42)
        lines = log.dump_jsonl().strip().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["answer"] == 42


# ----------------------------------------------------------------------
# Engine propagation


def _jobs(n=4):
    benchmarks = ("gaussian", "needle", "LSTM")
    return [
        SimJob(
            benchmark=benchmarks[index % len(benchmarks)],
            mechanism="lmi" if index % 2 == 0 else "baseline",
            warps=2,
            instructions_per_warp=120,
        )
        for index in range(n)
    ]


def _expected_ids(n):
    """The ids run_sim_jobs will mint next (same seed, same order)."""
    ids = [new_trace_id() for _ in range(n)]
    reset_trace_ids()
    return ids


class TestEnginePropagation:
    def test_serial_results_carry_deterministic_ids(self):
        jobs = _jobs(3)
        expected = _expected_ids(3)
        results = run_sim_jobs(jobs, batch_size=1)
        assert [r.trace_id for r in results] == expected
        for result in results:
            doc = TRACES.get(result.trace_id)
            assert doc is not None and doc["complete"]
            assert doc["attrs"]["origin"] == "engine.serial"
            assert doc["attrs"]["benchmark"] == result.job.benchmark
            stages = [s["stage"] for s in doc["stages"]]
            assert "sim" in stages

    def test_batched_results_carry_deterministic_ids(self):
        jobs = _jobs(4)
        expected = _expected_ids(4)
        results = run_sim_jobs(jobs, batch_size=4)
        assert [r.trace_id for r in results] == expected
        doc = TRACES.get(results[0].trace_id)
        assert doc["attrs"]["origin"] == "engine.batched"

    def test_disable_env_turns_tracing_off(self, monkeypatch):
        monkeypatch.setenv(TRACE_DISABLE_ENV, "1")
        results = run_sim_jobs(_jobs(2), batch_size=1)
        assert all(r.trace_id is None for r in results)
        assert len(TRACES) == 0

    def test_pool_propagates_ids_across_fork(self, monkeypatch):
        monkeypatch.setattr(engine_module.os, "cpu_count", lambda: 4)
        jobs = _jobs(6)
        expected = _expected_ids(6)
        results = run_sim_jobs(jobs, n_jobs=4)
        assert [r.trace_id for r in results] == expected
        for result in results:
            doc = TRACES.get(result.trace_id)
            assert doc is not None and doc["complete"]
            assert doc["attrs"]["origin"] == "fabric"

    def test_redispatch_after_crash_keeps_original_id(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setattr(engine_module.os, "cpu_count", lambda: 4)
        monkeypatch.setenv(FAIL_CELL_ENV, "needle:baseline")
        monkeypatch.setenv(FAIL_DIR_ENV, str(tmp_path))
        jobs = _jobs(6)
        expected = _expected_ids(6)
        results = run_sim_jobs(jobs, n_jobs=4)
        assert fabric_counters()["cells_redispatched"] == 1
        assert (tmp_path / "fabric-fail-once").exists()
        # The crashed cell's task tuple — id included — was re-queued
        # verbatim, so even that cell reports its original trace id.
        assert [r.trace_id for r in results] == expected
        victim = next(
            r for r in results
            if (r.job.benchmark, r.job.mechanism) == ("needle", "baseline")
        )
        assert TRACES.get(victim.trace_id)["attrs"]["origin"] == "fabric"

    def test_cache_hits_carry_no_trace_id(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CELL_CACHE_ENV, str(tmp_path / "cells"))
        jobs = _jobs(3)
        first = run_sim_jobs(jobs, batch_size=1)
        assert all(r.trace_id is not None for r in first)
        TRACES.clear()
        second = run_sim_jobs(jobs, batch_size=1)
        assert all(r.trace_id is None for r in second)
        assert fabric_counters()["cells_skipped"] >= 3
        # No executions → nothing recorded for the warm run.
        assert len(TRACES) == 0
        assert [r.cycles for r in second] == [r.cycles for r in first]


# ----------------------------------------------------------------------
# Determinism: exports never see tracing


def _captured_exports():
    with capture(sample_every=1) as hub:
        run_sim_jobs(_jobs(4), batch_size=2)
        metrics = json.dumps(
            metrics_json(hub.registry, recorder=hub.recorder),
            sort_keys=True,
        )
        trace = json.dumps(
            chrome_trace(hub.tracer, hub.recorder), sort_keys=True
        )
    return metrics, trace


class TestExportIsolation:
    def test_exports_identical_with_tracing_on_and_off(self, monkeypatch):
        tracing_on = _captured_exports()
        reset_trace_ids()
        TRACES.clear()
        monkeypatch.setenv(TRACE_DISABLE_ENV, "1")
        tracing_off = _captured_exports()
        assert tracing_on == tracing_off

    def test_no_trace_id_leaks_into_exports(self):
        metrics, trace = _captured_exports()
        assert len(TRACES) > 0  # tracing really ran
        assert not LEAK_RE.search(metrics)
        assert not LEAK_RE.search(trace)

    def test_trace_ids_absent_from_result_stats(self):
        results = run_sim_jobs(_jobs(2), batch_size=1)
        for result in results:
            blob = json.dumps(
                {
                    "cycles": result.cycles,
                    "stats": result.stats.__dict__,
                    "phases": result.phases,
                },
                sort_keys=True, default=str,
            )
            assert not LEAK_RE.search(blob)


# ----------------------------------------------------------------------
# Terminal rendering


class TestFormatTrace:
    def test_gantt_covers_every_stage(self):
        store = TraceStore()
        store.begin("rtx-f" * 4, source="executed")
        store.stage("rtx-f" * 4, "admission", 0.002)
        store.stage("rtx-f" * 4, "sim", 0.020)
        store.finish("rtx-f" * 4, 0.025)
        text = format_trace(store.get("rtx-f" * 4), width=24)
        assert "admission" in text and "sim" in text
        assert "unattributed" in text
        assert "complete" in text and "25.00ms" in text
        bars = [line for line in text.splitlines() if "|" in line]
        assert len(bars) == 3
        assert all("█" in line for line in bars)

    def test_empty_trace_renders(self):
        assert "no stages" in format_trace(
            {"trace_id": "rtx-0", "complete": False}
        )
