"""Tests for the benchmark profiles and trace synthesis."""

import pytest

from repro.common.errors import ConfigurationError
from repro.workloads import (
    PROFILES,
    SUITES,
    BenchmarkProfile,
    all_benchmarks,
    profile,
    synthesize_trace,
)


class TestProfiles:
    def test_28_benchmarks_as_in_table5(self):
        assert len(all_benchmarks()) == 28

    def test_suite_sizes(self):
        assert len(SUITES["rodinia"]) == 15
        assert len(SUITES["tango"]) == 4
        assert len(SUITES["ft"]) == 5
        assert len(SUITES["ad"]) == 4

    def test_every_benchmark_has_a_profile(self):
        for name in all_benchmarks():
            assert profile(name).name == name

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            profile("doom")

    def test_region_fractions_sum_to_one(self):
        for spec in PROFILES.values():
            total = spec.global_frac + spec.shared_frac + spec.local_frac
            assert total == pytest.approx(1.0)

    def test_invalid_fractions_rejected(self):
        with pytest.raises(ConfigurationError):
            BenchmarkProfile("x", "t", mem_fraction=0.3,
                             global_frac=0.9, shared_frac=0.9, local_frac=0.0)

    def test_invalid_locality_rejected(self):
        with pytest.raises(ConfigurationError):
            BenchmarkProfile("x", "t", mem_fraction=0.3,
                             global_frac=1.0, shared_frac=0.0, local_frac=0.0,
                             buffer_locality="chaotic")

    def test_paper_quoted_dbi_ratios(self):
        assert profile("gaussian").dbi_check_ratio == pytest.approx(67.14)
        assert profile("swin").dbi_check_ratio == pytest.approx(28.13)

    def test_every_profile_has_alloc_sizes(self):
        for spec in PROFILES.values():
            assert spec.alloc_sizes
            assert all(s > 0 and c > 0 for s, c in spec.alloc_sizes)


class TestTraceSynthesis:
    def test_deterministic_across_calls(self):
        a = synthesize_trace("bert", warps=2, instructions_per_warp=200)
        b = synthesize_trace("bert", warps=2, instructions_per_warp=200)
        assert a.warps == b.warps

    def test_seed_salt_changes_stream(self):
        a = synthesize_trace("bert", warps=1, instructions_per_warp=200)
        b = synthesize_trace("bert", warps=1, instructions_per_warp=200,
                             seed_salt=1)
        assert a.warps != b.warps

    def test_shape(self):
        trace = synthesize_trace("hotspot", warps=4, instructions_per_warp=300)
        assert len(trace.warps) == 4
        assert all(len(s) == 300 for s in trace.warps)
        assert trace.total_instructions == 1200

    def test_region_mix_tracks_profile(self):
        spec = profile("lud_cuda")
        trace = synthesize_trace("lud_cuda", warps=8,
                                 instructions_per_warp=2000)
        mix = trace.memory_region_mix()
        assert mix["shared"] == pytest.approx(spec.shared_frac, abs=0.05)
        assert mix["global"] == pytest.approx(spec.global_frac, abs=0.05)

    def test_mem_fraction_tracks_profile(self):
        spec = profile("bfs")
        trace = synthesize_trace("bfs", warps=8, instructions_per_warp=2000)
        measured = trace.memory_count() / trace.total_instructions
        assert measured == pytest.approx(spec.mem_fraction, abs=0.04)

    def test_checked_fraction_tracks_profile(self):
        spec = profile("gaussian")
        trace = synthesize_trace("gaussian", warps=8,
                                 instructions_per_warp=2000)
        expected = (1 - spec.mem_fraction) * spec.int_fraction * spec.ptr_rate
        measured = trace.checked_count() / trace.total_instructions
        assert measured == pytest.approx(expected, abs=0.05)

    def test_uncoalesced_benchmarks_have_multi_transaction_ops(self):
        trace = synthesize_trace("needle", warps=4,
                                 instructions_per_warp=1000)
        widths = {
            len(i.lines)
            for s in trace.warps
            for i in s
            if i.op.is_memory
        }
        assert max(widths) > 1

    def test_scatter_locality_varies_buffers(self):
        trace = synthesize_trace("needle", warps=2,
                                 instructions_per_warp=1000)
        buffers = {
            b
            for s in trace.warps
            for i in s
            if i.op.is_memory
            for b in i.buffer_ids
        }
        assert len(buffers) > 8

    def test_addresses_fall_in_declared_regions(self):
        from repro.memory import layout

        trace = synthesize_trace("backprop", warps=2,
                                 instructions_per_warp=500)
        for stream in trace.warps:
            for instr in stream:
                if not instr.op.is_memory:
                    continue
                space = instr.op.space
                lo, hi = layout.region_bounds(space)
                assert all(lo <= line < hi for line in instr.lines)
